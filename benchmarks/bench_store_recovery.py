"""Store recovery: snapshot + WAL replay vs WAL-only replay vs cold rebuild.

What a restart costs.  A durable store comes back by loading the latest
snapshot and replaying the WAL tail through the same delta machinery that
applied the updates the first time; the recovered state is asserted equal to
the uninterrupted store (columns and registered view caches) before timing.

Three measured paths over the same update history:

* **snapshot + tail** — compacted halfway through the stream, so recovery
  loads columns for the bulk and replays only the tail deltas;
* **WAL-only** — no compaction: every record (ingest included) replays;
* **cold rebuild** — re-parsing and re-ingesting the document and re-applying
  every delta through a fresh in-memory store (what a process without
  durability files would have to do, given the original inputs).
"""

from __future__ import annotations

import pytest

from repro.ivm import Delta
from repro.semirings import NATURAL
from repro.store import DocumentStore
from repro.workloads import random_forest, random_tree

FOREST = random_forest(NATURAL, num_trees=16, depth=4, fanout=3, seed=500)
UPDATES = [
    Delta.insertion(NATURAL, random_tree(NATURAL, depth=3, fanout=2, seed=510 + i), 1 + i % 3)
    for i in range(12)
]
VIEW_QUERY = "$S//c"


def _build(directory, compact_at: int | None) -> DocumentStore:
    store = DocumentStore(NATURAL, directory=directory)
    store.ingest("doc", FOREST)
    store.register_view("hits", VIEW_QUERY, "doc")
    for step, delta in enumerate(UPDATES):
        if compact_at is not None and step == compact_at:
            store.compact()
        store.update("doc", delta)
    return store


@pytest.fixture(scope="module")
def snapshot_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("store-snap") / "s"
    return directory, _build(directory, compact_at=len(UPDATES) // 2)


@pytest.fixture(scope="module")
def wal_only_store(tmp_path_factory):
    directory = tmp_path_factory.mktemp("store-wal") / "s"
    return directory, _build(directory, compact_at=None)


def _check(recovered: DocumentStore, live: DocumentStore) -> None:
    assert recovered.columns("doc") == live.columns("doc")
    assert recovered.view("hits").result == live.view("hits").result


def test_recovery_snapshot_plus_tail(benchmark, snapshot_store):
    directory, live = snapshot_store
    recovered = benchmark(lambda: DocumentStore.open(directory))
    _check(recovered, live)
    assert recovered.stats().recovered_records == len(UPDATES) - len(UPDATES) // 2


def test_recovery_wal_only(benchmark, wal_only_store):
    directory, live = wal_only_store
    recovered = benchmark(lambda: DocumentStore.open(directory))
    _check(recovered, live)
    # ingest + view + every update replayed
    assert recovered.stats().recovered_records == 2 + len(UPDATES)


def test_recovery_cold_rebuild_baseline(benchmark, snapshot_store):
    _, live = snapshot_store

    def rebuild() -> DocumentStore:
        store = DocumentStore(NATURAL)
        store.ingest("doc", FOREST)
        store.register_view("hits", VIEW_QUERY, "doc")
        for delta in UPDATES:
            store.update("doc", delta)
        return store

    rebuilt = benchmark(rebuild)
    _check(rebuilt, live)
