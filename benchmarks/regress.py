"""The bench-regression watchdog over ``BENCH_history/``.

``run_all.py`` archives every run as one JSON file; this script (also
reachable as ``repro bench-check``) compares the **newest** archived run
against the **median of the preceding runs** of the same mode and exits
nonzero when any headline metric regressed past the threshold.

Direction is metric-aware: names ending in ``_ratio`` are overheads
(lower is better); everything else is a speedup (higher is better).
Raw wall times (``bench/<test>/mean_s``) are opt-in via ``--wall-times``
— they compare absolute seconds across possibly different machines, so
the default check sticks to the within-run ratios, which are
machine-relative and therefore stable under CI-runner variance.

Exit codes: 0 = no regression (or fewer than two comparable runs — the
trajectory has no baseline yet), 1 = at least one regression, 2 = usage
error (missing/unreadable history).
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import statistics
import sys
from pathlib import Path

DEFAULT_THRESHOLD_PCT = 15.0
DEFAULT_WINDOW = 3

_BENCH_DIR = Path(__file__).resolve().parent


def _flatten(entry: dict, wall_times: bool = False) -> dict[str, float]:
    """Headline metrics of one archived run, reusing run_all's flattening."""
    if str(_BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(_BENCH_DIR))
    spec = importlib.util.spec_from_file_location("repro_run_all", _BENCH_DIR / "run_all.py")
    module = sys.modules.get("repro_run_all")
    if module is None:
        module = importlib.util.module_from_spec(spec)
        sys.modules["repro_run_all"] = module
        spec.loader.exec_module(module)
    metrics = dict(module._flatten_metrics(entry))
    if wall_times:
        for bench in entry.get("benchmarks", []) or []:
            if isinstance(bench, dict) and "name" in bench:
                mean = bench.get("mean_s")
                if isinstance(mean, (int, float)):
                    metrics[f"bench/{bench['name']}/mean_s"] = float(mean)
    return metrics


def _lower_is_better(name: str) -> bool:
    return name.endswith("_ratio") or name.endswith("/mean_s")


def load_history(history_dir: str | Path, quick: bool = False) -> list[dict]:
    """Archived runs of the requested mode, oldest first."""
    directory = Path(history_dir)
    if not directory.is_dir():
        raise FileNotFoundError(f"no benchmark history directory at {directory}")
    runs = []
    for path in sorted(directory.glob("run-*.json")):
        try:
            entry = json.loads(path.read_text())
        except ValueError:
            continue  # a truncated archive must not break the watchdog
        if entry.get("quick", False) == quick:
            entry.setdefault("_path", str(path))
            runs.append(entry)
    return runs


def check_regressions(
    runs: list[dict],
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    window: int = DEFAULT_WINDOW,
    wall_times: bool = False,
) -> dict:
    """Compare the newest run against the median of up to ``window`` prior runs.

    Returns a report dict: ``regressions`` / ``improvements`` / ``stable``
    lists of per-metric records, plus ``baseline_runs`` and ``ok``.
    A metric missing from either side is skipped (sections come and go
    across PRs); only metrics present in both are judged.
    """
    if len(runs) < 2:
        return {
            "ok": True,
            "reason": f"only {len(runs)} comparable run(s); no baseline yet",
            "baseline_runs": 0,
            "regressions": [],
            "improvements": [],
            "stable": [],
        }
    current = runs[-1]
    baseline_entries = runs[max(0, len(runs) - 1 - window):-1]
    current_metrics = _flatten(current, wall_times)
    baseline_flat = [_flatten(entry, wall_times) for entry in baseline_entries]

    regressions, improvements, stable = [], [], []
    for name in sorted(current_metrics):
        history = [flat[name] for flat in baseline_flat if name in flat]
        if not history:
            continue
        baseline = statistics.median(history)
        now = current_metrics[name]
        if baseline <= 0:
            continue
        if _lower_is_better(name):
            change_pct = (now - baseline) / baseline * 100.0  # up = worse
        else:
            change_pct = (baseline - now) / baseline * 100.0  # down = worse
        record = {
            "metric": name,
            "baseline": baseline,
            "current": now,
            "samples": len(history),
            "worse_by_pct": round(change_pct, 2),
        }
        if change_pct > threshold_pct:
            regressions.append(record)
        elif change_pct < -threshold_pct:
            improvements.append(record)
        else:
            stable.append(record)
    return {
        "ok": not regressions,
        "current_run": current.get("generated_at", "?"),
        "baseline_runs": len(baseline_entries),
        "threshold_pct": threshold_pct,
        "regressions": regressions,
        "improvements": improvements,
        "stable": stable,
    }


def _print_report(report: dict, quick: bool) -> None:
    mode = "quick" if quick else "full"
    if report.get("reason"):
        print(f"bench-check ({mode}): {report['reason']}")
        return
    print(
        f"bench-check ({mode}): run {report['current_run']} vs median of "
        f"{report['baseline_runs']} prior run(s), threshold {report['threshold_pct']:g}%"
    )
    for record in report["regressions"]:
        print(
            f"  REGRESSION  {record['metric']:44s} "
            f"{record['baseline']:8.3f} -> {record['current']:8.3f}  "
            f"(worse by {record['worse_by_pct']:+.1f}%)"
        )
    for record in report["improvements"]:
        print(
            f"  improved    {record['metric']:44s} "
            f"{record['baseline']:8.3f} -> {record['current']:8.3f}"
        )
    judged = len(report["regressions"]) + len(report["improvements"]) + len(report["stable"])
    print(
        f"  {judged} metric(s) judged: {len(report['regressions'])} regressed, "
        f"{len(report['improvements'])} improved, {len(report['stable'])} stable"
    )


def run_check(
    history_dir: str | Path = "BENCH_history",
    threshold_pct: float = DEFAULT_THRESHOLD_PCT,
    window: int = DEFAULT_WINDOW,
    quick: bool = False,
    wall_times: bool = False,
    as_json: bool = False,
) -> int:
    """The full check; returns the process exit code."""
    try:
        runs = load_history(history_dir, quick)
    except FileNotFoundError as error:
        print(f"bench-check: {error}", file=sys.stderr)
        return 2
    report = check_regressions(runs, threshold_pct, window, wall_times)
    if as_json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        _print_report(report, quick)
    return 0 if report["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--history", default="BENCH_history", metavar="DIR")
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD_PCT, metavar="PCT")
    parser.add_argument("--window", type=int, default=DEFAULT_WINDOW, metavar="N")
    parser.add_argument("--quick", action="store_true", help="compare quick-mode runs")
    parser.add_argument(
        "--wall-times",
        action="store_true",
        help="also judge raw per-test wall times (machine-sensitive; off by default)",
    )
    parser.add_argument("--json", action="store_true", help="print the report as JSON")
    args = parser.parse_args(argv)
    return run_check(
        history_dir=args.history,
        threshold_pct=args.threshold,
        window=args.window,
        quick=args.quick,
        wall_times=args.wall_times,
        as_json=args.json,
    )


if __name__ == "__main__":
    sys.exit(main())
