"""E6 — Section 5: incomplete UXML and the strong representation system.

Regenerates the possible-worlds example: the Boolean worlds of the Section 5
representation (six of them), and the strong-representation identity
``p(Mod_B(v)) = Mod_B(p(v))`` for the descendant query.
"""

from __future__ import annotations

from repro.incomplete import (
    check_strong_representation,
    mod_boolean,
    mod_natural,
    posbool_representation,
)
from repro.paperdata import section5_query, section5_representation
from repro.semirings import BOOLEAN


def test_sec5_boolean_possible_worlds(benchmark, table_printer):
    representation = section5_representation()
    worlds = benchmark(lambda: mod_boolean(representation))
    assert len(worlds) == 6
    table_printer(
        "Section 5 possible worlds (paper vs measured)",
        ["quantity", "paper", "measured"],
        [("|Mod_B(v)| (source worlds)", 6, len(worlds))],
    )


def test_sec5_strong_representation_identity(benchmark, table_printer):
    representation = section5_representation()
    report = benchmark(
        lambda: check_strong_representation(section5_query(), "T", representation, BOOLEAN)
    )
    assert report["holds"]
    table_printer(
        "Section 5 strong representation p(Mod_B(v)) = Mod_B(p(v))",
        ["quantity", "value"],
        [
            ("identity holds", report["holds"]),
            ("valuations enumerated", report["num_valuations"]),
            ("distinct answer worlds", len(report["worlds_query_then_specialize"])),
        ],
    )


def test_sec5_posbool_representation(benchmark):
    """PosBool annotations suffice for Boolean worlds (smaller representation)."""
    representation = posbool_representation(section5_representation())
    report = benchmark(
        lambda: check_strong_representation(section5_query(), "T", representation, BOOLEAN)
    )
    assert report["holds"]


def test_sec5_bag_worlds_with_repetition(benchmark, table_printer):
    """Mod_N(v): the same representation also describes XML with repetitions."""
    representation = section5_representation()
    worlds = benchmark(lambda: mod_natural(representation, max_value=2))
    assert len(worlds) > 6
    table_printer(
        "Section 5 bag worlds (multiplicities 0..2 per token)",
        ["quantity", "measured"],
        [("distinct N-worlds", len(worlds))],
    )
