"""Checksum overhead on the durability hot paths (must stay <= 5%).

The integrity contract (:mod:`repro.store.integrity`) is that end-to-end
checksumming is cheap enough to leave on unconditionally, measured against
the **pre-checksum (PR 9) baseline**: the old append serialized the record
and wrote it through a text-mode handle (one encode inside ``json.dumps``,
a second inside ``TextIOWrapper.write``); the v1 append serializes once,
splices the CRC32 into the line as bytes, and writes through a binary
handle — the saved encode pays for the checksum.  Snapshot verification is
one CRC32 over the raw body bytes before parsing, measured against the
same load with ``verify=False``.

The regression bar — enforced here and by the CI quick-mode step via
``run_all.py``'s ``integrity`` section — is that either path costs at most
5% over its baseline.  The same-code ``checksum=False`` ratio is recorded
for the trajectory without a bar: it isolates the pure crc+splice cost
from the text-vs-binary win, and nobody runs that configuration.

Appends go through a real file (open/write/flush per record, no fsync —
the default durability), so the measured ratios reflect the production
append, not a serialization micro-benchmark.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from statistics import median

from repro.obs.trace import span
from repro.resilience.faults import fail_point
from repro.semirings import NATURAL
from repro.store import WriteAheadLog, load_snapshot, write_snapshot
from repro.store.columns import ShreddedColumns
from repro.workloads import random_forest

#: The acceptance bar: v1 appends vs the PR 9 append, verified snapshot
#: loads vs unverified.
MAX_OVERHEAD_RATIO = 1.05

#: A realistic update record: one delta change with codec-sized fields.
RECORD = {
    "op": "update",
    "doc": "a",
    "changes": [
        {
            "tree": "t" * 120,
            "pos": "p" * 48,
            "neg": "n" * 48,
            "label": "member",
            "pos_repr": "3",
            "neg_repr": "0",
        }
    ],
}


class Pr9WriteAheadLog(WriteAheadLog):
    """The pre-checksum append, byte for byte: the PR 9 baseline.

    Checksum-less (v0) records through a text-mode handle — exactly what
    ``append`` compiled to before the v1 record format landed.
    """

    def append(self, record: dict) -> int:
        lsn = self._next_lsn
        payload = dict(record)
        payload["lsn"] = lsn
        body = json.dumps(payload, sort_keys=True)
        with span(
            "store.wal.append", lsn=lsn, bytes=len(body) + 1, fsync=self.fsync
        ), open(self.path, "a", encoding="utf-8") as handle:
            fail_point("wal.append.write")
            handle.write(body)
            handle.flush()
            fail_point("wal.append.torn")
            handle.write("\n")
            handle.flush()
            fail_point("wal.append.fsync")
        self._next_lsn = lsn + 1
        self._records.append((lsn, payload))
        return lsn


def interleaved_append_medians(
    directory: Path, appends: int = 3000
) -> tuple[float, float, float]:
    """Median per-append seconds for (pr9, v1-checksummed, v0-binary).

    The three logs are appended to in strict alternation, so load or
    clock-frequency drift hits all sides equally; medians are robust
    against the page-cache/allocator spikes individual appends take.
    """
    baseline = Pr9WriteAheadLog(directory / "pr9.jsonl", checksum=False)
    checked = WriteAheadLog(directory / "v1.jsonl")
    plain = WriteAheadLog(directory / "v0.jsonl", checksum=False)
    times: dict[str, list[float]] = {"pr9": [], "v1": [], "v0": []}
    for _ in range(appends):
        for key, wal in (("pr9", baseline), ("v1", checked), ("v0", plain)):
            start = time.perf_counter()
            wal.append(RECORD)
            times[key].append(time.perf_counter() - start)
    warm = appends // 10  # discard cold-file warmup
    return (
        median(times["pr9"][warm:]),
        median(times["v1"][warm:]),
        median(times["v0"][warm:]),
    )


def snapshot_path(directory: Path) -> Path:
    path = directory / "snapshot.json"
    if not path.exists():
        forest = random_forest(NATURAL, num_trees=8, depth=4, fanout=3, seed=17)
        write_snapshot(
            path,
            semiring_name="natural",
            wal_lsn=1,
            documents={"d": ShreddedColumns.from_forest(forest)},
            views=[],
        )
    return path


def interleaved_load_medians(path: Path, loads: int = 150) -> tuple[float, float]:
    """Median per-load seconds for (unverified, verified)."""
    times: dict[bool, list[float]] = {False: [], True: []}
    for _ in range(loads):
        for verify in (False, True):
            start = time.perf_counter()
            load_snapshot(path, verify=verify)
            times[verify].append(time.perf_counter() - start)
    warm = loads // 10
    return median(times[False][warm:]), median(times[True][warm:])


def test_wal_append_checksummed(benchmark, tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.jsonl")
    benchmark(lambda: wal.append(RECORD))


def test_wal_append_pr9_baseline(benchmark, tmp_path):
    wal = Pr9WriteAheadLog(tmp_path / "wal.jsonl", checksum=False)
    benchmark(lambda: wal.append(RECORD))


def test_snapshot_load_verified(benchmark, tmp_path):
    path = snapshot_path(tmp_path)
    benchmark(lambda: load_snapshot(path))


def test_wal_append_overhead_within_bound(tmp_path):
    """v1 checksummed appends must cost <= 5% over the PR 9 append."""
    pr9_s, v1_s, v0_s = interleaved_append_medians(tmp_path, appends=1500)
    ratio = v1_s / pr9_s
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"checksummed appends cost {(ratio - 1) * 100:.1f}% over the "
        f"pre-checksum baseline (bar: {(MAX_OVERHEAD_RATIO - 1) * 100:.0f}%); "
        f"pr9={pr9_s * 1e6:.1f}us v1={v1_s * 1e6:.1f}us v0={v0_s * 1e6:.1f}us"
    )


def test_snapshot_load_overhead_within_bound(tmp_path):
    """Envelope verification must cost <= 5% over an unverified load."""
    path = snapshot_path(tmp_path)
    assert load_snapshot(path)["verified"] is True
    plain_s, verified_s = interleaved_load_medians(path)
    ratio = verified_s / plain_s
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"snapshot verification costs {(ratio - 1) * 100:.1f}% per load "
        f"(bar: {(MAX_OVERHEAD_RATIO - 1) * 100:.0f}%); "
        f"plain={plain_s * 1e6:.1f}us verified={verified_s * 1e6:.1f}us"
    )
