"""Codegen vs closure vs interpreter on the paper figures and deep chains.

The source-codegen evaluator (``method="nrc-codegen"``) is the production
default; this benchmark pins its three workload families against the closure
evaluator (``nrc``) and the Figure 8 reference interpreter (``nrc-interp``):

* the Figure 1 iteration (grandchildren) query over N[X],
* the Figure 4 child-chain prefix of the descendant workload, and
* the deep child-chain workload (``suite_child-chain-3``) over N — the shape
  where closure dispatch overhead dominates and codegen wins most.

Answers are asserted equal across all three methods before timing; the CI
quick-mode regression bar (codegen >= 1.3x closure on child-chain-3) lives in
``run_all.py``'s ``codegen`` section.
"""

from __future__ import annotations

import pytest

from repro.paperdata import figure1_query, figure1_source
from repro.semirings import NATURAL, PROVENANCE
from repro.uxquery import prepare_query
from repro.workloads import random_forest, standard_query_suite


def _chain_case():
    forest = random_forest(NATURAL, num_trees=4, depth=4, fanout=3, seed=17)
    query = standard_query_suite()["child-chain-3"]
    return prepare_query(query, NATURAL, {"S": forest}), {"S": forest}


def _figure1_case():
    source = figure1_source()
    return prepare_query(figure1_query(), PROVENANCE, {"S": source}), {"S": source}


def _figure4_chain_case():
    # The straight-line prefix of the figure-4 shape (// itself is srt and
    # served by the closure fallback — covered in bench_figure4_descendant).
    forest = random_forest(PROVENANCE, num_trees=3, depth=4, fanout=2, seed=23)
    return (
        prepare_query("element out { $S/*/*/* }", PROVENANCE, {"S": forest}),
        {"S": forest},
    )


CASES = {
    "child_chain3_natural": _chain_case,
    "figure1_provenance": _figure1_case,
    "figure4_chain_provenance": _figure4_chain_case,
}


def _check_equivalence(prepared, env):
    codegen = prepared.evaluate(env, method="nrc-codegen")
    assert prepared.generated is not None, "codegen unexpectedly declined"
    assert codegen == prepared.evaluate(env, method="nrc")
    assert codegen == prepared.evaluate(env, method="nrc-interp")
    return codegen


@pytest.mark.parametrize("case", sorted(CASES))
def test_codegen_generated_program(benchmark, case):
    prepared, env = CASES[case]()
    expected = _check_equivalence(prepared, env)
    answer = benchmark(lambda: prepared.evaluate(env, method="nrc-codegen"))
    assert answer == expected


@pytest.mark.parametrize("case", sorted(CASES))
def test_codegen_closure_baseline(benchmark, case):
    prepared, env = CASES[case]()
    expected = _check_equivalence(prepared, env)
    answer = benchmark(lambda: prepared.evaluate(env, method="nrc"))
    assert answer == expected


@pytest.mark.parametrize("case", sorted(CASES))
def test_codegen_interpreter_baseline(benchmark, case):
    prepared, env = CASES[case]()
    expected = _check_equivalence(prepared, env)
    answer = benchmark(lambda: prepared.evaluate(env, method="nrc-interp"))
    assert answer == expected


def test_codegen_batch_reuses_one_program(benchmark):
    """One generated function across a whole batch of documents."""
    from repro.exec import BatchEvaluator

    documents = [
        random_forest(NATURAL, num_trees=3, depth=3, fanout=3, seed=800 + index)
        for index in range(16)
    ]
    prepared = prepare_query("($S)/*/*", NATURAL, {"S": documents[0]})
    assert prepared.generated is not None
    evaluator = BatchEvaluator(prepared)
    expected = [prepared.evaluate({"S": document}) for document in documents]
    answer = benchmark(lambda: evaluator.evaluate_many(documents))
    assert answer == expected
    assert prepared.generated.calls > 0
