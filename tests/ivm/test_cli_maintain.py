"""The CLI maintain / cache-stats surfaces."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

DOCUMENT_XML = """
<a annot="z">
  <b annot="x1"> <d annot="y1"/> </b>
  <c annot="x2"> <d annot="y2"/> <e annot="y3"/> </c>
</a>
"""

UPDATES = [
    {"op": "insert", "tree": '<b annot="n1"><d annot="n2"/></b>'},
    {"op": "insert", "tree": '<c annot="m1"><d annot="m2"/></c>'},
    {"op": "reannotate", "tree": '<b annot="n1"><d annot="n2"/></b>', "annot": "n1 + q"},
    {"op": "delete", "tree": '<c annot="m1"><d annot="m2"/></c>'},
]


@pytest.fixture
def document_path(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOCUMENT_XML, encoding="utf-8")
    return str(path)


@pytest.fixture
def updates_path(tmp_path):
    path = tmp_path / "updates.jsonl"
    lines = ["# replay script"] + [json.dumps(spec) for spec in UPDATES]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return str(path)


class TestMaintain:
    def test_replay_reports_and_verifies(self, document_path, updates_path, capsys):
        exit_code = main(
            [
                "maintain",
                "--query",
                "($S)//d",
                "--input",
                document_path,
                "--updates",
                updates_path,
                "--semiring",
                "N[X]",
                "--print-result",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "applied 4 update(s): 4 incremental, 0 recomputed (plan: linear)" in output
        assert "maintain" in output and "recompute" in output and "speedup" in output
        # The maintained N[X] result: b's new annotation distributes over its d.
        assert "n1*n2 + n2*q" in output
        assert "m1*m2" not in output  # the deleted member's contribution is gone

    def test_no_verify_skips_recompute_timing(self, document_path, updates_path, capsys):
        exit_code = main(
            [
                "maintain",
                "-q",
                "($S)//d",
                "-i",
                document_path,
                "-u",
                updates_path,
                "-k",
                "N[X]",
                "--no-verify",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "maintain" in output
        assert "recompute  total" not in output
        assert "speedup" not in output

    def test_non_incremental_query_recomputes(self, document_path, updates_path, capsys):
        exit_code = main(
            [
                "maintain",
                "-q",
                "element out { ($S)//d }",
                "-i",
                document_path,
                "-u",
                updates_path,
                "-k",
                "N[X]",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "4 recomputed (plan: non-incremental)" in output

    def test_bad_update_script_fails_loudly(self, document_path, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"op": "warp", "tree": "<b/>"}\n', encoding="utf-8")
        exit_code = main(
            ["maintain", "-q", "($S)//d", "-i", document_path, "-u", str(bad)]
        )
        assert exit_code == 1
        assert "unknown update op" in capsys.readouterr().err

    def test_delete_missing_member_fails_loudly(self, document_path, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(json.dumps({"op": "delete", "tree": "<zzz/>"}) + "\n", encoding="utf-8")
        exit_code = main(
            ["maintain", "-q", "($S)//d", "-i", document_path, "-u", str(bad)]
        )
        assert exit_code == 1
        assert "cannot delete" in capsys.readouterr().err

    def test_reannotate_missing_member_fails_loudly(self, document_path, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps({"op": "reannotate", "tree": "<zzz/>", "annot": "q"}) + "\n",
            encoding="utf-8",
        )
        exit_code = main(
            ["maintain", "-q", "($S)//d", "-i", document_path, "-u", str(bad)]
        )
        assert exit_code == 1
        assert "cannot reannotate" in capsys.readouterr().err


class TestStatsSurfaces:
    def test_cache_stats_command(self, capsys):
        assert main(["cache-stats"]) == 0
        output = capsys.readouterr().out
        assert "plan cache:" in output
        assert "hits" in output and "misses" in output

    def test_query_stats_flag(self, document_path, capsys):
        exit_code = main(
            ["query", "-q", "($S)//d", "-i", document_path, "-k", "N[X]", "--stats"]
        )
        assert exit_code == 0
        assert "plan cache:" in capsys.readouterr().out

    def test_maintain_stats_flag(self, document_path, updates_path, capsys):
        exit_code = main(
            [
                "maintain",
                "-q",
                "($S)//d",
                "-i",
                document_path,
                "-u",
                updates_path,
                "-k",
                "N[X]",
                "--stats",
            ]
        )
        assert exit_code == 0
        assert "plan cache:" in capsys.readouterr().out

    def test_repeated_query_hits_the_cache(self, document_path, capsys):
        main(["query", "-q", "($S)//e", "-i", document_path, "-k", "N[X]"])
        capsys.readouterr()
        main(["query", "-q", "($S)//e", "-i", document_path, "-k", "N[X]", "--stats"])
        output = capsys.readouterr().out
        # Second run of the same text must be served from the plan cache.
        assert "misses" in output
