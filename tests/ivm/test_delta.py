"""Delta semantics: construction, composition, application, lift/lower."""

from __future__ import annotations

import pytest

from repro.errors import IVMError
from repro.ivm import Delta, lift_forest, lower_value
from repro.kcollections import KSet
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, DiffPair, diff_of, variables
from repro.uxml.tree import forest, leaf
from repro.workloads import random_forest, random_tree


def _doc(semiring, seed=11):
    return random_forest(semiring, num_trees=6, depth=3, fanout=2, seed=seed)


class TestConstruction:
    def test_insertion_defaults_to_one(self):
        tree = leaf(NATURAL, "a")
        delta = Delta.insertion(NATURAL, tree)
        assert dict(delta.items()) == {tree: DiffPair(1, 0)}
        assert delta.is_insert_only()

    def test_changes_to_the_same_tree_accumulate(self):
        tree = leaf(NATURAL, "a")
        delta = Delta(NATURAL, [(tree, 2), (tree, DiffPair(1, 1))])
        assert dict(delta.items()) == {tree: DiffPair(3, 1)}
        assert not delta.is_insert_only()

    def test_zero_changes_are_dropped(self):
        tree = leaf(NATURAL, "a")
        assert Delta(NATURAL, [(tree, 0)]).is_empty()
        assert len(Delta(NATURAL, [(tree, 0), (leaf(NATURAL, "b"), 1)])) == 1

    def test_deletion_and_reannotation(self):
        tree = leaf(PROVENANCE, "a")
        x, y = variables("x", "y")
        assert dict(Delta.deletion(PROVENANCE, tree, x).items()) == {
            tree: DiffPair(PROVENANCE.zero, x)
        }
        assert dict(Delta.reannotation(PROVENANCE, tree, x, y).items()) == {
            tree: DiffPair(y, x)
        }

    def test_rejects_non_trees_and_diff_semirings(self):
        with pytest.raises(IVMError):
            Delta(NATURAL, [("not-a-tree", 1)])
        with pytest.raises(IVMError):
            Delta(diff_of(NATURAL))

    def test_merge_is_pairwise(self):
        a, b = leaf(NATURAL, "a"), leaf(NATURAL, "b")
        merged = Delta.insertion(NATURAL, a, 2) | Delta.deletion(NATURAL, a, 1) | Delta.insertion(NATURAL, b)
        assert dict(merged.items()) == {a: DiffPair(2, 1), b: DiffPair(1, 0)}
        with pytest.raises(IVMError):
            Delta.insertion(NATURAL, a) | Delta.insertion(BOOLEAN, leaf(BOOLEAN, "a"))


class TestProjections:
    def test_insertions_and_deletions_ksets(self):
        a, b = leaf(NATURAL, "a"), leaf(NATURAL, "b")
        delta = Delta(NATURAL, [(a, DiffPair(2, 1)), (b, DiffPair(0, 3))])
        assert delta.insertions() == KSet(NATURAL, [(a, 2)])
        assert delta.deletions() == KSet(NATURAL, [(a, 1), (b, 3)])

    def test_as_diff_forest_lifts_members(self):
        tree = random_tree(NATURAL, depth=3, fanout=2, seed=3)
        delta = Delta.insertion(NATURAL, tree, 2)
        diff_forest = delta.as_diff_forest()
        assert diff_forest.semiring == diff_of(NATURAL)
        (member,) = diff_forest.values()
        assert diff_forest.annotation(member) == DiffPair(2, 0)
        # Nested annotations are lifted, and lowering restores the original.
        assert lower_value(member, diff_of(NATURAL)) == tree


class TestApplication:
    def test_insert_new_and_existing_members(self):
        a, b = leaf(NATURAL, "a"), leaf(NATURAL, "b")
        document = forest(NATURAL, (a, 2))
        updated = Delta(NATURAL, [(a, 1), (b, 3)]).apply_to(document)
        assert updated == forest(NATURAL, (a, 3), (b, 3))

    def test_exact_partial_deletion_with_subtraction(self):
        a = leaf(NATURAL, "a")
        document = forest(NATURAL, (a, 5))
        assert Delta.deletion(NATURAL, a, 2).apply_to(document) == forest(NATURAL, (a, 3))
        assert Delta.deletion(NATURAL, a, 5).apply_to(document).is_empty()
        with pytest.raises(IVMError, match="removes more"):
            Delta.deletion(NATURAL, a, 7).apply_to(document)

    def test_full_deletion_without_subtraction(self):
        a = leaf(BOOLEAN, "a")
        document = forest(BOOLEAN, (a, True))
        assert Delta.deletion(BOOLEAN, a, True).apply_to(document).is_empty()

    def test_replacement_without_subtraction(self):
        a = leaf(BOOLEAN, "a")
        document = forest(BOOLEAN, (a, True))
        updated = Delta.reannotation(BOOLEAN, a, True, True).apply_to(document)
        assert updated == document

    def test_partial_deletion_without_subtraction_is_rejected(self):
        a, b = leaf(BOOLEAN, "a"), leaf(BOOLEAN, "b")
        document = forest(BOOLEAN, (a, True), (b, True))
        # Deleting an annotation that is neither the member's whole
        # annotation nor zero is undecidable without cancellation.
        delta = Delta(BOOLEAN, [(a, DiffPair(True, True)), (b, DiffPair(False, True))])
        updated = delta.apply_to(document)  # a: replacement; b: full removal
        assert updated == forest(BOOLEAN, (a, True))

    def test_apply_to_validates_semiring(self):
        a = leaf(NATURAL, "a")
        with pytest.raises(IVMError):
            Delta.insertion(NATURAL, a).apply_to(_doc(BOOLEAN))

    def test_empty_delta_returns_document_unchanged(self):
        document = _doc(NATURAL)
        assert Delta(NATURAL).apply_to(document) is document


class TestLiftLower:
    @pytest.mark.parametrize("semiring", [NATURAL, PROVENANCE, BOOLEAN], ids=lambda s: s.name)
    def test_lift_forest_round_trips(self, semiring):
        document = _doc(semiring)
        diff = diff_of(semiring)
        lifted = lift_forest(document, diff)
        assert lifted.semiring == diff
        assert lower_value(lifted, diff) == document

    def test_lower_rejects_negative_nested_annotation(self):
        diff = diff_of(NATURAL)
        poisoned = KSet(diff, [(leaf(NATURAL, "a"), DiffPair(1, 1))])
        with pytest.raises(IVMError, match="negative part"):
            lower_value(poisoned, diff)
