"""Materialized views: apply == full recomputation, exactly, for every semiring."""

from __future__ import annotations

import random

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import IVMError
from repro.exec import PlanCache
from repro.ivm import (
    BILINEAR,
    LINEAR,
    NON_INCREMENTAL,
    Delta,
    MaterializedView,
    materialize,
)
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, standard_semirings
from repro.semirings.polynomial import Polynomial
from repro.uxquery import prepare_query
from repro.workloads import random_forest, random_tree

REGISTRY_SEMIRINGS = list(standard_semirings())

#: Queries covering every maintenance classification.
LINEAR_QUERY = "($S)//c"
BILINEAR_QUERY = "for $x in $S, $y in $S where $x = $y return ($x)/*"
NON_INCREMENTAL_QUERY = "element out { ($S)/* }"


def _annotations(semiring, rng):
    """Non-zero sample annotations; fresh tokens for N[X] so nothing collapses."""
    if semiring == PROVENANCE:
        return [Polynomial.variable(f"u{rng.randrange(1 << 20)}") for _ in range(4)]
    return [value for value in semiring.sample_elements() if not semiring.is_zero(value)]


def _random_delta(semiring, document, rng):
    """A random applicable update against the current document."""
    choices = ["insert"]
    if len(document):
        choices += ["delete", "reannotate"]
    op = rng.choice(choices)
    samples = _annotations(semiring, rng)
    if op == "insert":
        tree = random_tree(semiring, depth=2, fanout=2, seed=rng.randrange(1 << 30))
        return Delta.insertion(semiring, tree, rng.choice(samples))
    tree = rng.choice(sorted(document.values(), key=repr))
    current = document.annotation(tree)
    if op == "delete":
        if semiring == NATURAL and current >= 2 and rng.random() < 0.5:
            # Exercise *partial* deletion where the semiring can cancel.
            return Delta.deletion(semiring, tree, current - 1)
        return Delta.deletion(semiring, tree, current)
    return Delta.reannotation(semiring, tree, current, rng.choice(samples))


class TestExactEquivalence:
    """The acceptance gate: apply(delta) == re-evaluating on the new document."""

    @pytest.mark.parametrize("semiring", REGISTRY_SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize(
        "query", [LINEAR_QUERY, BILINEAR_QUERY, NON_INCREMENTAL_QUERY]
    )
    def test_randomized_update_stream(self, semiring, query):
        rng = random.Random(hash((semiring.name, query)) & 0xFFFF)
        document = random_forest(semiring, num_trees=5, depth=3, fanout=2, seed=13)
        prepared = prepare_query(query, semiring, {"S": document})
        view = prepared.materialize(document)
        for _ in range(12):
            delta = _random_delta(semiring, view.document, rng)
            maintained = view.apply(delta)
            assert maintained == prepared.evaluate({"S": view.document})
        assert view.stats().applies == 12

    @pytest.mark.parametrize("semiring", [NATURAL, PROVENANCE], ids=lambda s: s.name)
    def test_deletions_round_trip_through_diff(self, semiring):
        """Cancellative semirings maintain deleting updates *incrementally*."""
        rng = random.Random(7)
        document = random_forest(semiring, num_trees=6, depth=3, fanout=2, seed=29)
        prepared = prepare_query(LINEAR_QUERY, semiring, {"S": document})
        view = prepared.materialize(document)
        for _ in range(10):
            delta = _random_delta(semiring, view.document, rng)
            assert view.apply(delta) == prepared.evaluate({"S": view.document})
        stats = view.stats()
        assert stats.recomputes == 0, "N / N[X] must never fall back on this stream"
        assert stats.incremental == 10

    def test_partial_deletion_is_exact_over_n(self):
        document = random_forest(NATURAL, num_trees=4, depth=2, fanout=2, seed=3)
        prepared = prepare_query("($S)/*", NATURAL, {"S": document})
        view = prepared.materialize(document)
        tree = next(iter(document))
        multiplicity = document.annotation(tree)
        view.apply(Delta.insertion(NATURAL, tree, 3))
        view.apply(Delta.deletion(NATURAL, tree, multiplicity + 1))
        assert view.document.annotation(tree) == 2
        assert view.result == prepared.evaluate({"S": view.document})
        assert view.stats().recomputes == 0

    def test_non_subtractive_semirings_fall_back_but_stay_exact(self):
        document = random_forest(BOOLEAN, num_trees=5, depth=2, fanout=2, seed=5)
        prepared = prepare_query(LINEAR_QUERY, BOOLEAN, {"S": document})
        view = prepared.materialize(document)
        tree = next(iter(view.document))
        view.apply(Delta.deletion(BOOLEAN, tree, view.document.annotation(tree)))
        assert view.result == prepared.evaluate({"S": view.document})
        stats = view.stats()
        assert stats.recomputes == 1  # deleting over B cannot cancel


class TestViewBehavior:
    def test_classifications_are_exposed(self):
        document = random_forest(NATURAL, num_trees=4, depth=2, fanout=2, seed=1)
        for query, expected in (
            (LINEAR_QUERY, LINEAR),
            (BILINEAR_QUERY, BILINEAR),
            (NON_INCREMENTAL_QUERY, NON_INCREMENTAL),
        ):
            prepared = prepare_query(query, NATURAL, {"S": document})
            assert prepared.materialize(document).classification == expected

    def test_insert_only_is_incremental_even_bilinear(self):
        document = random_forest(NATURAL, num_trees=4, depth=2, fanout=2, seed=2)
        prepared = prepare_query(BILINEAR_QUERY, NATURAL, {"S": document})
        view = prepared.materialize(document)
        tree = random_tree(NATURAL, depth=2, fanout=2, seed=55)
        view.apply(Delta.insertion(NATURAL, tree, 2))
        assert view.result == prepared.evaluate({"S": view.document})
        assert view.stats().incremental == 1

    def test_refresh_recomputes_and_counts(self):
        document = random_forest(NATURAL, num_trees=3, depth=2, fanout=2, seed=4)
        view = materialize(LINEAR_QUERY, NATURAL, document, cache=PlanCache(maxsize=4))
        before = view.result
        assert view.refresh() == before
        assert view.stats().refreshes == 1

    def test_empty_delta_is_a_noop(self):
        document = random_forest(NATURAL, num_trees=3, depth=2, fanout=2, seed=6)
        view = prepare_query(LINEAR_QUERY, NATURAL, {"S": document}).materialize(document)
        result = view.result
        assert view.apply(Delta(NATURAL)) is result
        assert view.stats().incremental == 1

    def test_failed_apply_leaves_stats_and_state_untouched(self):
        document = random_forest(NATURAL, num_trees=3, depth=2, fanout=2, seed=26)
        prepared = prepare_query(LINEAR_QUERY, NATURAL, {"S": document})
        view = prepared.materialize(document)
        ghost = random_tree(NATURAL, depth=2, fanout=2, seed=999)
        with pytest.raises(IVMError, match="removes more"):
            view.apply(Delta.deletion(NATURAL, ghost, 5))
        stats = view.stats()
        assert stats.applies == 0
        assert stats.applies == stats.incremental + stats.recomputes
        assert view.document == document

    def test_rejects_mismatched_deltas_and_documents(self):
        document = random_forest(NATURAL, num_trees=3, depth=2, fanout=2, seed=8)
        prepared = prepare_query(LINEAR_QUERY, NATURAL, {"S": document})
        view = prepared.materialize(document)
        with pytest.raises(IVMError):
            view.apply(Delta.insertion(BOOLEAN, random_tree(BOOLEAN, 2, 2, seed=1)))
        with pytest.raises(IVMError):
            view.apply("not a delta")
        with pytest.raises(IVMError):
            MaterializedView(prepared, "not a document")
        with pytest.raises(IVMError):
            MaterializedView(prepared, random_forest(BOOLEAN, 2, 2, 2, seed=1))

    def test_env_variables_flow_through_maintenance(self):
        document = random_forest(NATURAL, num_trees=4, depth=2, fanout=2, seed=9)
        constant = random_forest(NATURAL, num_trees=2, depth=2, fanout=2, seed=10)
        prepared = prepare_query(
            "( ($S)/*, ($T)/* )", NATURAL, {"S": document, "T": constant}
        )
        view = prepared.materialize(document, env={"T": constant})
        assert view.classification == LINEAR
        tree = random_tree(NATURAL, depth=2, fanout=2, seed=77)
        view.apply(Delta.insertion(NATURAL, tree, 2))
        deleted = next(iter(view.document))
        view.apply(Delta.deletion(NATURAL, deleted, view.document.annotation(deleted)))
        assert view.result == prepared.evaluate({"S": view.document, "T": constant})
        assert view.stats().recomputes == 0

    def test_env_forest_inside_the_delta_plan_is_lifted(self):
        # `for $x in $T return $S` is linear in $S but its *delta plan*
        # still iterates the constant $T — the Diff(K) path must evaluate
        # with the environment lifted, multiplying every delta pair by the
        # lifted annotations of $T.
        document = random_forest(NATURAL, num_trees=3, depth=2, fanout=2, seed=30)
        constant = random_forest(NATURAL, num_trees=3, depth=2, fanout=2, seed=31)
        prepared = prepare_query(
            "for $x in $T return $S", NATURAL, {"S": document, "T": constant}
        )
        view = prepared.materialize(document, env={"T": constant})
        assert view.classification == LINEAR
        victim = next(iter(view.document))
        view.apply(Delta.deletion(NATURAL, victim, view.document.annotation(victim)))
        assert view.result == prepared.evaluate({"S": view.document, "T": constant})
        assert view.stats().recomputes == 0

    def test_plan_cache_materialize_shares_compiles(self):
        cache = PlanCache(maxsize=8)
        document = random_forest(NATURAL, num_trees=3, depth=2, fanout=2, seed=12)
        view_a = materialize(LINEAR_QUERY, NATURAL, document, cache=cache)
        view_b = materialize(LINEAR_QUERY, NATURAL, document, cache=cache)
        assert view_a.prepared is view_b.prepared
        assert cache.stats().compiles == 1
        assert cache.stats().hits == 1


class TestBatchedApplication:
    def test_apply_many_batches_insert_only_streams(self):
        document = random_forest(NATURAL, num_trees=5, depth=3, fanout=2, seed=20)
        prepared = prepare_query(LINEAR_QUERY, NATURAL, {"S": document})
        view = prepared.materialize(document)
        deltas = [
            Delta.insertion(NATURAL, random_tree(NATURAL, 3, 2, seed=300 + i), 1 + i % 2)
            for i in range(6)
        ]
        view.apply_many(deltas)
        assert view.result == prepared.evaluate({"S": view.document})
        stats = view.stats()
        assert stats.batched == 6
        assert stats.applies == 6

    def test_apply_many_with_executor(self):
        document = random_forest(PROVENANCE, num_trees=4, depth=2, fanout=2, seed=21)
        prepared = prepare_query("($S)/*", PROVENANCE, {"S": document})
        view = prepared.materialize(document)
        deltas = [
            Delta.insertion(PROVENANCE, random_tree(PROVENANCE, 2, 2, seed=400 + i))
            for i in range(5)
        ]
        with ThreadPoolExecutor(max_workers=3) as executor:
            view.apply_many(deltas, executor=executor)
        assert view.result == prepared.evaluate({"S": view.document})
        assert view.stats().batched == 5

    def test_apply_many_rejects_process_pools(self):
        from concurrent.futures import ProcessPoolExecutor

        document = random_forest(NATURAL, num_trees=3, depth=2, fanout=2, seed=23)
        view = prepare_query(LINEAR_QUERY, NATURAL, {"S": document}).materialize(document)
        deltas = [Delta.insertion(NATURAL, random_tree(NATURAL, 2, 2, seed=i)) for i in range(2)]
        with ProcessPoolExecutor(max_workers=1) as executor:
            with pytest.raises(IVMError, match="process pools"):
                view.apply_many(deltas, executor=executor)

    def test_apply_many_recomputes_once_for_non_incremental_plans(self):
        document = random_forest(NATURAL, num_trees=4, depth=2, fanout=2, seed=24)
        prepared = prepare_query(NON_INCREMENTAL_QUERY, NATURAL, {"S": document})
        view = prepared.materialize(document)
        deltas = [
            Delta.insertion(NATURAL, random_tree(NATURAL, 2, 2, seed=600 + i))
            for i in range(5)
        ]
        view.apply_many(deltas)
        assert view.result == prepared.evaluate({"S": view.document})
        stats = view.stats()
        assert stats.applies == 5
        assert stats.recomputes == 1  # the stream folds into one recomputation

    def test_empty_delta_is_free_even_for_non_incremental_plans(self):
        document = random_forest(NATURAL, num_trees=3, depth=2, fanout=2, seed=25)
        view = prepare_query(NON_INCREMENTAL_QUERY, NATURAL, {"S": document}).materialize(document)
        result = view.result
        assert view.apply(Delta(NATURAL)) is result
        assert view.stats().recomputes == 0

    def test_apply_many_degrades_for_mixed_streams(self):
        document = random_forest(NATURAL, num_trees=5, depth=2, fanout=2, seed=22)
        prepared = prepare_query(LINEAR_QUERY, NATURAL, {"S": document})
        view = prepared.materialize(document)
        victim = next(iter(document))
        deltas = [
            Delta.insertion(NATURAL, random_tree(NATURAL, 2, 2, seed=500)),
            Delta.deletion(NATURAL, victim, document.annotation(victim)),
        ]
        view.apply_many(deltas)
        assert view.result == prepared.evaluate({"S": view.document})
        assert view.stats().batched == 0
        assert view.stats().applies == 2


class TestCodegenDeltaPlans:
    """Delta plans compile through the source-codegen pipeline when the
    derived expression is straight-line, and maintenance runs the generated
    program — observably via its execution counter."""

    def test_straight_line_delta_plan_executes_generated_code(self):
        document = random_forest(NATURAL, num_trees=4, depth=3, fanout=2, seed=31)
        prepared = prepare_query("($S)/*/*", NATURAL, {"S": document})
        view = prepared.materialize(document)
        plan = view.plan
        assert plan.classification == LINEAR
        assert plan.generated is not None
        assert plan.program is plan.generated
        before = plan.generated.calls
        view.apply(Delta.insertion(NATURAL, random_tree(NATURAL, 2, 2, seed=32)))
        assert plan.generated.calls == before + 1
        assert view.result == prepared.evaluate({"S": view.document})
        assert view.stats().incremental == 1

    def test_diff_compilation_also_goes_through_codegen(self):
        from repro.nrc.codegen import CodegenProgram

        document = random_forest(NATURAL, num_trees=4, depth=3, fanout=2, seed=33)
        prepared = prepare_query("($S)/*/*", NATURAL, {"S": document})
        view = prepared.materialize(document)
        victim = next(iter(view.document))
        view.apply(Delta.deletion(NATURAL, victim, view.document.annotation(victim)))
        assert view.result == prepared.evaluate({"S": view.document})
        assert view.stats().recomputes == 0
        assert isinstance(view.plan.compiled_diff, CodegenProgram)

    def test_srt_delta_plans_fall_back_to_closures(self):
        document = random_forest(NATURAL, num_trees=4, depth=3, fanout=2, seed=34)
        prepared = prepare_query(LINEAR_QUERY, NATURAL, {"S": document})
        view = prepared.materialize(document)
        plan = view.plan
        assert plan.classification == LINEAR
        assert plan.generated is None  # //c keeps srt inside the delta
        assert plan.program is plan.compiled
        view.apply(Delta.insertion(NATURAL, random_tree(NATURAL, 2, 2, seed=35)))
        assert view.result == prepared.evaluate({"S": view.document})
        assert view.stats().incremental == 1

    def test_apply_many_batches_through_the_generated_program(self):
        document = random_forest(NATURAL, num_trees=4, depth=3, fanout=2, seed=36)
        prepared = prepare_query("($S)/*/*", NATURAL, {"S": document})
        view = prepared.materialize(document)
        plan = view.plan
        assert plan.generated is not None
        before = plan.generated.calls
        deltas = [
            Delta.insertion(NATURAL, random_tree(NATURAL, 2, 2, seed=40 + i))
            for i in range(4)
        ]
        view.apply_many(deltas)
        assert plan.generated.calls == before + len(deltas)
        assert view.result == prepared.evaluate({"S": view.document})
        assert view.stats().batched == len(deltas)
