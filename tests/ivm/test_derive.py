"""Delta-plan derivation: classification and structure of derived plans."""

from __future__ import annotations

import pytest

from repro.errors import IVMError
from repro.ivm import BILINEAR, LINEAR, NON_INCREMENTAL, Delta, DeltaPlan, derive_delta
from repro.nrc.ast import (
    BigUnion,
    EmptySet,
    Let,
    Singleton,
    Union,
    Var,
    free_variables,
)
from repro.semirings import NATURAL
from repro.uxquery import prepare_query
from repro.workloads import random_forest

DOC = random_forest(NATURAL, num_trees=6, depth=3, fanout=2, seed=41)


def _plan(query, semiring=NATURAL, env=None):
    prepared = prepare_query(query, semiring, env or {"S": DOC})
    return DeltaPlan(prepared, "S")


class TestClassification:
    @pytest.mark.parametrize(
        "query",
        ["($S)/*", "($S)/*/*", "($S)//c", "for $x in $S return ($x)/*"],
    )
    def test_navigation_queries_are_linear(self, query):
        plan = _plan(query)
        assert plan.classification == LINEAR
        assert not plan.needs_old and not plan.needs_new

    def test_self_join_is_bilinear(self):
        plan = _plan("for $x in $S, $y in $S where $x = $y return ($x)")
        assert plan.classification == BILINEAR
        assert plan.needs_old or plan.needs_new

    def test_element_wrapper_is_non_incremental(self):
        plan = _plan("element out { ($S)/* }")
        assert plan.classification == NON_INCREMENTAL
        assert plan.reason and "forest" in plan.reason
        with pytest.raises(IVMError, match="no delta plan"):
            plan.evaluate_insertions(DOC, DOC, DOC)

    def test_document_ignoring_query_is_linear_with_empty_delta(self):
        plan = _plan("($T)/*", env={"S": DOC, "T": DOC})
        assert plan.classification == LINEAR
        assert isinstance(plan.delta_expr, EmptySet)

    def test_let_alias_is_linear(self):
        plan = _plan("let $d := $S return ($d)/*")
        assert plan.classification == LINEAR

    def test_constant_union_side_is_linear_for_any_semiring(self):
        # Unlike sharding, the delta of a constant is simply {} — no
        # idempotence needed, even over non-idempotent N.
        plan = _plan("( ($S)/*, ($T)/* )", env={"S": DOC, "T": DOC})
        assert plan.classification == LINEAR


class TestDerivativeStructure:
    def test_var_derives_to_delta_var(self):
        expr, classification, delta_var, old_var, new_var = derive_delta(Var("S"), "S")
        assert expr == Var(delta_var)
        assert classification == LINEAR

    def test_union_derives_pointwise(self):
        expr, classification, delta_var, _, _ = derive_delta(
            Union(Var("S"), Var("T")), "S"
        )
        assert expr == Var(delta_var)  # the constant side dropped out
        assert classification == LINEAR

    def test_bilinear_product_rule_mentions_old_and_new(self):
        # U(x in S) U(y in S) {x}  — both source and (transitively) body.
        inner = BigUnion("y", Var("S"), Singleton(Var("x")))
        outer = BigUnion("x", Var("S"), inner)
        expr, classification, delta_var, old_var, new_var = derive_delta(outer, "S")
        assert classification == BILINEAR
        free = free_variables(expr)
        assert delta_var in free
        assert old_var in free or new_var in free

    def test_fresh_names_avoid_collisions(self):
        # An expression already using the candidate names forces renaming.
        expr = Union(Var("S"), Union(Var("S@delta"), Var("S@old")))
        derived, _, delta_var, old_var, _ = derive_delta(expr, "S")
        assert delta_var not in ("S@delta", "S@old")
        assert old_var not in ("S@delta", "S@old")

    def test_constructors_are_non_incremental(self):
        assert derive_delta(Singleton(Var("S")), "S") is None

    def test_let_alias_inlined_let_value_rejected(self):
        aliased = Let("d", Var("S"), BigUnion("x", Var("d"), Singleton(Var("x"))))
        derived = derive_delta(aliased, "S")
        assert derived is not None and derived[1] == LINEAR
        wrapped = Let("d", Singleton(Var("S")), Var("d"))
        assert derive_delta(wrapped, "S") is None


class TestDeltaEvaluation:
    def test_linear_delta_equals_result_difference(self):
        plan = _plan("($S)//c")
        prepared = plan.prepared
        addition = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=99)
        old = prepared.evaluate({"S": DOC})
        new = prepared.evaluate({"S": DOC.union(addition)})
        change = plan.evaluate_insertions(addition, DOC, DOC.union(addition))
        assert old.union(change) == new

    def test_diff_evaluation_rejected_for_bilinear(self):
        plan = _plan("for $x in $S, $y in $S where $x = $y return ($x)")
        delta = Delta.from_insertions(NATURAL, random_forest(NATURAL, 1, 2, 2, seed=1))
        with pytest.raises(IVMError, match="bilinear"):
            plan.evaluate_diff(delta.as_diff_forest())
