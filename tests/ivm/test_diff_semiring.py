"""The Diff(K) ring-completion construction: laws, lift/lower, subtraction."""

from __future__ import annotations

import pytest

from repro.errors import SemiringError
from repro.semirings import (
    BOOLEAN,
    NATURAL,
    PROVENANCE,
    DiffPair,
    DiffSemiring,
    ProductSemiring,
    check_semiring_axioms,
    diff_of,
    standard_semirings,
    variables,
)

REGISTRY_SEMIRINGS = list(standard_semirings())


@pytest.mark.parametrize("base", REGISTRY_SEMIRINGS, ids=lambda s: s.name)
def test_diff_satisfies_semiring_laws(base):
    """Diff(K) is a commutative semiring for every registry semiring K."""
    diff = diff_of(base)
    assert check_semiring_axioms(diff, diff.sample_elements()) == []


@pytest.mark.parametrize("base", REGISTRY_SEMIRINGS, ids=lambda s: s.name)
def test_lift_is_a_homomorphism(base):
    diff = diff_of(base)
    samples = list(base.sample_elements())[:4]
    assert diff.eq(diff.lift(base.zero), diff.zero)
    assert diff.eq(diff.lift(base.one), diff.one)
    for a in samples:
        for b in samples:
            assert diff.eq(diff.lift(base.add(a, b)), diff.add(diff.lift(a), diff.lift(b)))
            assert diff.eq(diff.lift(base.mul(a, b)), diff.mul(diff.lift(a), diff.lift(b)))


@pytest.mark.parametrize("base", REGISTRY_SEMIRINGS, ids=lambda s: s.name)
def test_lower_inverts_lift(base):
    diff = diff_of(base)
    for a in base.sample_elements():
        lifted = diff.lift(a)
        assert diff.is_lifted(lifted)
        assert base.eq(diff.lower(lifted), a)


def test_mul_multiplies_signs():
    diff = diff_of(NATURAL)
    # (2 - 1) * (3 - 2) = (2*3 + 1*2) - (2*2 + 1*3) = 8 - 7  (== 1, as pairs would cancel to)
    product = diff.mul(DiffPair(2, 1), DiffPair(3, 2))
    assert product == DiffPair(8, 7)
    assert diff.base.subtract(product.pos, product.neg) == 1


def test_negate_swaps_parts():
    diff = diff_of(NATURAL)
    assert diff.negate(DiffPair(3, 1)) == DiffPair(1, 3)
    # a + negate(a) is difference-equivalent to zero, not structurally zero.
    total = diff.add(DiffPair(3, 1), diff.negate(DiffPair(3, 1)))
    assert total == DiffPair(4, 4)
    assert not diff.is_zero(total)
    assert diff.base.is_zero(diff.lower(total))


def test_base_elements_are_accepted_and_lifted():
    diff = diff_of(NATURAL)
    assert diff.is_valid(5)
    assert diff.coerce(5) == DiffPair(5, 0)
    assert diff.parse_element("5") == DiffPair(5, 0)


def test_lower_without_subtraction_needs_zero_negative_part():
    diff = diff_of(BOOLEAN)
    assert diff.lower(DiffPair(True, False)) is True
    with pytest.raises(SemiringError):
        diff.lower(DiffPair(True, True))


def test_diff_of_interns_and_rejects_nesting():
    assert diff_of(NATURAL) is diff_of(NATURAL)
    assert diff_of(diff_of(NATURAL)) is diff_of(NATURAL)
    with pytest.raises(SemiringError):
        DiffSemiring(diff_of(NATURAL))


def test_diff_equality_follows_base():
    assert diff_of(NATURAL) == diff_of(NATURAL)
    assert diff_of(NATURAL) != diff_of(BOOLEAN)
    assert hash(diff_of(NATURAL)) == hash(DiffSemiring(NATURAL))


def test_diff_is_never_mul_idempotent():
    diff = diff_of(BOOLEAN)
    assert diff.idempotent_add
    assert not diff.idempotent_mul
    # The witness: (0 - 1)^2 = (1 - 0).
    assert diff.mul(DiffPair(False, True), DiffPair(False, True)) == DiffPair(True, False)


class TestExactSubtraction:
    def test_natural_subtract(self):
        assert NATURAL.supports_subtraction
        assert NATURAL.subtract(5, 3) == 2
        assert NATURAL.subtract(5, 0) == 5
        with pytest.raises(SemiringError):
            NATURAL.subtract(3, 5)

    def test_polynomial_subtract(self):
        assert PROVENANCE.supports_subtraction
        x, y = variables("x", "y")
        total = x + x + y
        assert PROVENANCE.subtract(total, x) == x + y
        assert PROVENANCE.subtract(total, total) == PROVENANCE.zero
        with pytest.raises(SemiringError):
            PROVENANCE.subtract(x, y)
        with pytest.raises(SemiringError):
            PROVENANCE.subtract(x, x + x)

    def test_boolean_has_no_subtraction(self):
        assert not BOOLEAN.supports_subtraction
        assert BOOLEAN.subtract(True, False) is True  # subtracting zero always works
        with pytest.raises(SemiringError):
            BOOLEAN.subtract(True, True)

    def test_product_subtracts_componentwise(self):
        product = ProductSemiring(NATURAL, PROVENANCE)
        assert product.supports_subtraction
        x = variables("x")[0]
        assert product.subtract((5, x + x), (2, x)) == (3, x)
        mixed = ProductSemiring(BOOLEAN, NATURAL)
        assert not mixed.supports_subtraction
