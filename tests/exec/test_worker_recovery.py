"""Process-pool fault tolerance: dead workers, retries, graceful degradation.

A worker killed mid-batch (modelled by the ``exec.worker.task`` failpoint
with the ``exit`` action — a real ``os._exit``) breaks the whole
``ProcessPoolExecutor``.  The batch evaluator must keep every completed
result, retry only the failed partition on a rebuilt pool, and degrade to
inline evaluation once the retry budget is spent — always ending with the
correct K-annotated results, with the retries visible in the counters.

The ``flag=`` trigger makes the kill cross-process exactly-once: the first
process to reach the site dies; the inherited failpoint passes through
everywhere else (rebuilt-pool workers and the degrade-inline parent path).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.errors import QueryTimeoutError
from repro.exec import BatchEvaluator, scoped_worker_stats, worker_stats
from repro.exec import batch as batch_module
from repro.resilience import EvalLimits, disarm_all, fail_at
from repro.semirings import NATURAL
from repro.store import DocumentStore
from repro.uxquery import prepare_query
from repro.workloads import random_forest


@pytest.fixture(autouse=True)
def _clean_slate():
    # scoped_worker_stats gives each test a zeroed view of the process-wide
    # worker counters AND restores the pre-test values afterwards, so this
    # module neither sees other tests' activity nor leaks its own.
    disarm_all()
    with scoped_worker_stats():
        yield
    disarm_all()


def _documents(count: int) -> list:
    return [
        random_forest(NATURAL, num_trees=2, depth=2, fanout=2, seed=50 + index)
        for index in range(count)
    ]


class TestWorkerRecovery:
    def test_killed_worker_is_retried_and_results_are_correct(self, tmp_path):
        documents = _documents(4)
        prepared = prepare_query("($S)/*/*", NATURAL, {"S": documents[0]})
        evaluator = BatchEvaluator(prepared)
        expected = evaluator.evaluate_many(documents)

        with fail_at("exec.worker.task", action="exit", flag=str(tmp_path / "killed")):
            with ProcessPoolExecutor(max_workers=2) as executor:
                results = evaluator.evaluate_many(documents, executor=executor)

        assert results == expected  # correct K-annotated results after retry
        assert (tmp_path / "killed").exists()  # exactly one worker really died
        assert evaluator.worker_retries > 0
        assert evaluator.pool_rebuilds >= 1
        assert evaluator.worker_degraded == 0
        stats = worker_stats()
        assert stats["broken_pools"] >= 1
        assert stats["retries"] == evaluator.worker_retries
        assert stats["pool_rebuilds"] == evaluator.pool_rebuilds

    def test_spent_retry_budget_degrades_to_inline(self, tmp_path, monkeypatch):
        monkeypatch.setattr(batch_module, "_RETRY_BUDGET", 0)
        documents = _documents(3)
        prepared = prepare_query("($S)/*", NATURAL, {"S": documents[0]})
        evaluator = BatchEvaluator(prepared)
        expected = evaluator.evaluate_many(documents)

        with fail_at("exec.worker.task", action="exit", flag=str(tmp_path / "killed")):
            with ProcessPoolExecutor(max_workers=2) as executor:
                results = evaluator.evaluate_many(documents, executor=executor)

        assert results == expected
        assert evaluator.worker_degraded > 0  # served inline, not by a pool
        assert evaluator.pool_rebuilds == 0
        assert worker_stats()["degraded"] == evaluator.worker_degraded

    def test_merged_batch_survives_a_killed_worker(self, tmp_path):
        documents = _documents(4)
        prepared = prepare_query("($S)/*", NATURAL, {"S": documents[0]})
        evaluator = BatchEvaluator(prepared)
        expected = evaluator.evaluate_merged(documents)

        with fail_at("exec.worker.task", action="exit", flag=str(tmp_path / "killed")):
            with ProcessPoolExecutor(max_workers=2) as executor:
                merged = evaluator.evaluate_merged(documents, executor=executor)

        assert merged == expected


class TestLimitsAcrossProcesses:
    def test_deadline_crosses_the_process_boundary(self):
        documents = _documents(2)
        prepared = prepare_query("($S)/*", NATURAL, {"S": documents[0]})
        evaluator = BatchEvaluator(prepared)
        with ProcessPoolExecutor(max_workers=2) as executor:
            with pytest.raises(QueryTimeoutError):
                evaluator.evaluate_many(
                    documents, executor=executor, limits=EvalLimits(timeout_s=0)
                )

    def test_generous_limits_match_inline_results(self):
        documents = _documents(3)
        prepared = prepare_query("($S)/*/*", NATURAL, {"S": documents[0]})
        evaluator = BatchEvaluator(prepared)
        expected = evaluator.evaluate_many(documents)
        with ProcessPoolExecutor(max_workers=2) as executor:
            results = evaluator.evaluate_many(
                documents, executor=executor, limits=EvalLimits(timeout_s=300)
            )
        assert results == expected


class TestStoreCounterSurfacing:
    def test_query_many_accumulates_worker_counters(self, tmp_path):
        store = DocumentStore(NATURAL)
        for index, forest in enumerate(_documents(3)):
            store.ingest(f"d{index}", forest)
        with fail_at("exec.worker.task", action="exit", flag=str(tmp_path / "killed")):
            with ProcessPoolExecutor(max_workers=2) as executor:
                results = store.query_many("($S)/*", executor=executor)
        assert len(results) == 3
        stats = store.stats()
        assert stats.worker_retries > 0
        assert stats.worker_degraded == 0
