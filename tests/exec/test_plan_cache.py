"""The plan cache: LRU behavior, stats, and concurrent compile coalescing."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ExecError, UXQueryEvalError
from repro.exec import PlanCache, cached_prepare, default_plan_cache
from repro.semirings import NATURAL, PROVENANCE
from repro.uxquery.engine import prepare_query
from repro.workloads import random_forest


@pytest.fixture
def forest():
    return random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=7)


class TestPlanCacheBasics:
    def test_hit_returns_same_plan(self, forest):
        cache = PlanCache(maxsize=4)
        first = cache.get("($S)/*", NATURAL, env={"S": forest})
        second = cache.get("($S)/*", NATURAL, env={"S": forest})
        assert first is second
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1 and stats.compiles == 1

    def test_distinct_keys_compile_separately(self, forest):
        cache = PlanCache(maxsize=8)
        by_query = cache.get("($S)/*", NATURAL, env={"S": forest})
        by_semiring = cache.get("($S)/*", PROVENANCE, env_types={"S": "forest"})
        assert by_query is not by_semiring
        assert cache.stats().compiles == 2

    def test_methods_share_one_plan(self, forest):
        """Plans are method-independent: one compile serves every method."""
        cache = PlanCache(maxsize=8)
        nrc_plan = cache.get("($S)/*", NATURAL, env={"S": forest})
        interp_plan = cache.get("($S)/*", NATURAL, env={"S": forest}, method="nrc-interp")
        direct_plan = cache.get("($S)/*", NATURAL, env={"S": forest}, method="direct")
        assert nrc_plan is interp_plan is direct_plan
        assert cache.stats().compiles == 1

    def test_query_ast_keys_structurally(self, forest):
        from repro.uxquery import parse_query
        from repro.uxquery.ast import LabelExpr

        cache = PlanCache(maxsize=4)
        ast = parse_query("($S)/*")
        ast_plan = cache.get(ast, NATURAL, env={"S": forest})
        # An equal AST value shares the plan.
        assert cache.get(parse_query("($S)/*"), NATURAL, env={"S": forest}) is ast_plan
        assert cache.stats().compiles == 1
        # Renderings are not injective, so a render-identical but different
        # AST must NOT share the plan (a label literal spelling the query).
        label = LabelExpr(str(ast))
        assert str(label) == str(ast)
        label_plan = cache.get(label, NATURAL, env={"S": forest})
        assert label_plan is not ast_plan
        assert label_plan.evaluate({"S": forest}) == str(ast)

    def test_lru_eviction(self, forest):
        cache = PlanCache(maxsize=2)
        cache.get("($S)/*", NATURAL, env={"S": forest})
        cache.get("($S)//c", NATURAL, env={"S": forest})
        cache.get("($S)/*", NATURAL, env={"S": forest})  # refresh recency
        cache.get("($S)/*/*", NATURAL, env={"S": forest})  # evicts ($S)//c
        assert cache.stats().evictions == 1
        cache.get("($S)/*", NATURAL, env={"S": forest})
        assert cache.stats().hits == 2  # the refreshed plan survived
        cache.get("($S)//c", NATURAL, env={"S": forest})
        assert cache.stats().compiles == 4  # the evicted plan recompiled

    def test_clear_resets_contents_not_counters(self, forest):
        cache = PlanCache(maxsize=4)
        cache.get("($S)/*", NATURAL, env={"S": forest})
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().compiles == 1
        cache.get("($S)/*", NATURAL, env={"S": forest})
        assert cache.stats().compiles == 2

    def test_rejects_bad_maxsize_and_method(self, forest):
        with pytest.raises(ExecError):
            PlanCache(maxsize=0)
        with pytest.raises(UXQueryEvalError, match="valid methods"):
            PlanCache(maxsize=2).get("($S)/*", NATURAL, env={"S": forest}, method="turbo")

    def test_error_during_compile_is_not_cached(self, forest):
        cache = PlanCache(maxsize=4)
        with pytest.raises(Exception):
            cache.get("for $x in", NATURAL, env={"S": forest})
        assert len(cache) == 0
        # A valid query under the same cache still works afterwards.
        cache.get("($S)/*", NATURAL, env={"S": forest})
        assert len(cache) == 1

    def test_default_cache_and_cached_prepare(self, forest):
        before = default_plan_cache().stats().compiles
        plan_a = cached_prepare("($S)/*/*/*", NATURAL, env={"S": forest})
        plan_b = cached_prepare("($S)/*/*/*", NATURAL, env={"S": forest})
        assert plan_a is plan_b
        assert default_plan_cache().stats().compiles == before + 1


class TestPlanCacheConcurrency:
    def test_one_compile_per_key_under_hammering(self, forest):
        """N threads x M keys: every key compiles exactly once."""
        compiles: dict[tuple, int] = {}
        compile_lock = threading.Lock()

        def counting_prepare(query, semiring, env=None, env_types=None):
            with compile_lock:
                key = (str(query), semiring.name)
                compiles[key] = compiles.get(key, 0) + 1
            return prepare_query(query, semiring, env=env, env_types=env_types)

        cache = PlanCache(maxsize=32, prepare=counting_prepare)
        queries = ["($S)/*", "($S)/*/*", "($S)//c", "($S)//d"]
        num_threads = 16
        iterations = 25
        start = threading.Barrier(num_threads)
        plans: list[dict[str, object]] = [dict() for _ in range(num_threads)]
        errors: list[BaseException] = []

        def hammer(worker: int) -> None:
            try:
                start.wait()
                for i in range(iterations):
                    text = queries[(worker + i) % len(queries)]
                    plan = cache.get(text, NATURAL, env={"S": forest})
                    previous = plans[worker].setdefault(text, plan)
                    assert previous is plan
            except BaseException as error:  # pragma: no cover - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert all(count == 1 for count in compiles.values()), compiles
        assert len(compiles) == len(queries)
        stats = cache.stats()
        assert stats.compiles == len(queries)
        assert stats.misses == len(queries)
        assert stats.hits == num_threads * iterations - len(queries)
        # Every thread saw the same shared plan per query.
        for text in queries:
            distinct = {id(per_thread[text]) for per_thread in plans}
            assert len(distinct) == 1

    def test_compile_failure_propagates_to_every_waiter_and_poisons_nothing(self, forest):
        """Regression: an exception in a coalesced compile must reach every
        coalesced waiter, leave no cached entry behind, and let the next
        caller on the key retry (and succeed) cleanly."""
        attempts = {"count": 0}
        attempt_lock = threading.Lock()
        release = threading.Event()
        failing = threading.Event()
        failing.set()

        class Boom(RuntimeError):
            pass

        def flaky_prepare(query, semiring, env=None, env_types=None):
            with attempt_lock:
                attempts["count"] += 1
                first = attempts["count"] == 1
            if failing.is_set():
                if first:
                    release.wait(timeout=5)  # hold waiters coalesced on this key
                raise Boom("transient compile failure")
            return prepare_query(query, semiring, env=env, env_types=env_types)

        cache = PlanCache(maxsize=4, prepare=flaky_prepare)
        num_threads = 8
        start = threading.Barrier(num_threads + 1)
        outcomes: list[BaseException | object] = []
        outcome_lock = threading.Lock()

        def racer() -> None:
            start.wait()
            try:
                plan = cache.get("($S)/*", NATURAL, env={"S": forest})
                with outcome_lock:
                    outcomes.append(plan)
            except BaseException as error:  # noqa: BLE001 - collected below
                with outcome_lock:
                    outcomes.append(error)

        threads = [threading.Thread(target=racer) for _ in range(num_threads)]
        for thread in threads:
            thread.start()
        start.wait()  # every racer is now past the barrier
        release.set()  # let the owner fail with all waiters coalesced
        for thread in threads:
            thread.join()

        # Every caller during the failing phase saw the failure itself —
        # coalesced waiters included; none were stranded or got a stale plan.
        assert len(outcomes) == num_threads
        assert all(isinstance(outcome, Boom) for outcome in outcomes), outcomes
        # The failures cached nothing and left no in-flight marker behind.
        assert len(cache) == 0
        assert cache.stats().compiles == 0
        # The next caller on the same key retries cleanly and succeeds.
        failing.clear()
        failed_attempts = attempts["count"]
        assert failed_attempts >= 1
        plan = cache.get("($S)/*", NATURAL, env={"S": forest})
        assert plan.evaluate({"S": forest}) is not None
        assert attempts["count"] == failed_attempts + 1
        assert cache.stats().compiles == 1
        assert len(cache) == 1
