"""Sharded evaluation: partitions cover exactly, shard-merge equals single-shot."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ExecError, SemiringError
from repro.exec import ShardedEvaluator, is_linear_in, partition_forest, shard_evaluate
from repro.kcollections import KSet
from repro.nrc.ast import BigUnion, EmptySet, Kids, Let, Singleton, Union, Var
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, standard_semirings
from repro.uxquery import prepare_query
from repro.workloads import random_forest

REGISTRY_SEMIRINGS = list(standard_semirings())

#: Forest-valued queries that are linear in $S and therefore shardable.
LINEAR_QUERIES = [
    "($S)/*",
    "($S)/*/*",
    "($S)//c",
    "for $x in $S return ($x)/*",
]


def _forest(semiring, num_trees=12, seed=23):
    return random_forest(semiring, num_trees=num_trees, depth=3, fanout=2, seed=seed)


class TestPartition:
    @pytest.mark.parametrize("scheme", ["hash", "round-robin"])
    @pytest.mark.parametrize("num_shards", [1, 2, 3, 5, 64])
    def test_partition_covers_exactly(self, scheme, num_shards):
        forest = _forest(PROVENANCE)
        shards = partition_forest(forest, num_shards, scheme)
        assert len(shards) == num_shards
        rebuilt = KSet.empty(PROVENANCE)
        seen = 0
        for shard in shards:
            seen += len(shard)
            rebuilt = rebuilt.union(shard)
        assert seen == len(forest)  # disjoint: no member duplicated
        assert rebuilt == forest

    def test_round_robin_balances(self):
        forest = _forest(NATURAL, num_trees=10)
        sizes = sorted(len(shard) for shard in forest.partition(5, "round-robin"))
        assert max(sizes) - min(sizes) <= 1

    def test_partition_rejects_bad_arguments(self):
        forest = _forest(NATURAL, num_trees=4)
        with pytest.raises(SemiringError):
            forest.partition(0)
        with pytest.raises(SemiringError, match="valid schemes"):
            forest.partition(2, "zigzag")


class TestLinearity:
    def test_structural_cases(self):
        s = Var("S")
        assert is_linear_in(s, "S")
        assert is_linear_in(EmptySet(), "S")
        assert is_linear_in(Union(s, EmptySet()), "S")
        assert is_linear_in(BigUnion("x", s, Singleton(Var("x"))), "S")
        assert is_linear_in(BigUnion("x", Var("T"), s), "S")  # linear in the body
        # Bilinear (self-join shaped) and constructor-wrapped forms refused.
        assert not is_linear_in(BigUnion("x", s, Kids(s)), "S")
        assert not is_linear_in(Singleton(s), "S")
        assert not is_linear_in(Union(s, Var("T")), "S")  # constant union side
        assert not is_linear_in(Var("T"), "S")
        # Shadowing: the inner S is the binder, not the document.
        assert not is_linear_in(BigUnion("S", Var("T"), Var("S")), "S")

    def test_let_bound_alias_is_inlined(self):
        # let D := S in U(x in D) {x}  — linear via the alias.
        s = Var("S")
        aliased = Let("D", s, BigUnion("x", Var("D"), Singleton(Var("x"))))
        assert is_linear_in(aliased, "S")
        # A let binding a non-alias value of S is still rejected.
        wrapped = Let("D", Singleton(s), BigUnion("x", Var("D"), Singleton(Var("x"))))
        assert not is_linear_in(wrapped, "S")
        # Chained aliases resolve too.
        chained = Let("D", s, Let("E", Var("D"), BigUnion("x", Var("E"), Singleton(Var("x")))))
        assert is_linear_in(chained, "S")

    def test_var_free_union_side_needs_idempotent_addition(self):
        s = Var("S")
        affine = Union(s, Var("T"))
        # Without a semiring (or with non-idempotent addition) the constant
        # side would be contributed once per shard — rejected.
        assert not is_linear_in(affine, "S")
        assert not is_linear_in(affine, "S", NATURAL)
        assert not is_linear_in(affine, "S", PROVENANCE)
        # Under idempotent addition the repeats collapse — accepted.
        assert is_linear_in(affine, "S", BOOLEAN)
        assert is_linear_in(Union(Var("T"), s), "S", BOOLEAN)
        # The var side must still be linear on its own.
        assert not is_linear_in(Union(Singleton(s), Var("T")), "S", BOOLEAN)

    def test_affine_shard_merge_matches_single_shot_boolean(self):
        """Shard-merge of `($S/*, $T/*)` (constant side) is exact over B."""
        forest = _forest(BOOLEAN, num_trees=10)
        constant = _forest(BOOLEAN, num_trees=3, seed=77)
        prepared = prepare_query(
            "( ($S)/*, ($T)/* )", BOOLEAN, {"S": forest, "T": constant}
        )
        single = prepared.evaluate({"S": forest, "T": constant})
        for num_shards in (1, 2, 4, 32):
            sharded = shard_evaluate(
                prepared, forest, env={"T": constant}, num_shards=num_shards
            )
            assert sharded == single

    def test_affine_shard_rejected_for_non_idempotent(self):
        forest = _forest(NATURAL, num_trees=6)
        constant = _forest(NATURAL, num_trees=2, seed=78)
        prepared = prepare_query(
            "( ($S)/*, ($T)/* )", NATURAL, {"S": forest, "T": constant}
        )
        with pytest.raises(ExecError, match="not linear"):
            ShardedEvaluator(prepared)

    def test_rejects_element_wrapper(self):
        forest = _forest(NATURAL)
        prepared = prepare_query("element out { ($S)/* }", NATURAL, {"S": forest})
        with pytest.raises(ExecError, match="forest-valued"):
            ShardedEvaluator(prepared)

    def test_rejects_self_join(self):
        forest = _forest(NATURAL)
        prepared = prepare_query(
            "for $x in $S, $y in $S where $x = $y return ($x)", NATURAL, {"S": forest}
        )
        with pytest.raises(ExecError, match="not linear"):
            ShardedEvaluator(prepared)


class TestShardMergeEqualsSingleShot:
    @pytest.mark.parametrize("semiring", REGISTRY_SEMIRINGS, ids=lambda s: s.name)
    @pytest.mark.parametrize("query", LINEAR_QUERIES)
    def test_every_registry_semiring(self, semiring, query):
        """The acceptance gate: exact shard-merge for every registry semiring,
        including the non-idempotent ones (N multiplicities, N[X] polynomials)."""
        forest = _forest(semiring)
        prepared = prepare_query(query, semiring, {"S": forest})
        single = prepared.evaluate({"S": forest})
        for scheme in ("hash", "round-robin"):
            sharded = shard_evaluate(
                prepared, forest, num_shards=4, scheme=scheme
            )
            assert sharded == single

    @pytest.mark.parametrize("num_shards", [1, 2, 3, 8, 100])
    def test_shard_counts_including_more_than_members(self, num_shards):
        forest = _forest(NATURAL, num_trees=8)
        prepared = prepare_query("($S)//c", NATURAL, {"S": forest})
        single = prepared.evaluate({"S": forest})
        assert shard_evaluate(prepared, forest, num_shards=num_shards) == single

    def test_thread_pool_matches_inline(self):
        forest = _forest(PROVENANCE, num_trees=16)
        prepared = prepare_query("($S)/*/*", PROVENANCE, {"S": forest})
        single = prepared.evaluate({"S": forest})
        evaluator = ShardedEvaluator(prepared, num_shards=4)
        with ThreadPoolExecutor(max_workers=4) as executor:
            assert evaluator.evaluate(forest, executor=executor) == single

    def test_process_pool_matches_inline(self):
        from concurrent.futures import ProcessPoolExecutor

        forest = _forest(NATURAL, num_trees=8)
        prepared = prepare_query("($S)/*/*", NATURAL, {"S": forest})
        single = prepared.evaluate({"S": forest})
        evaluator = ShardedEvaluator(prepared, num_shards=4)
        with ProcessPoolExecutor(max_workers=2) as executor:
            assert evaluator.evaluate(forest, executor=executor) == single

    def test_empty_document(self):
        forest = _forest(NATURAL)
        prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
        empty = KSet.empty(NATURAL)
        assert shard_evaluate(prepared, empty) == prepared.evaluate({"S": empty})

    def test_interpreter_method_agrees(self):
        forest = _forest(NATURAL)
        prepared = prepare_query("($S)//c", NATURAL, {"S": forest})
        single = prepared.evaluate({"S": forest})
        assert shard_evaluate(prepared, forest, method="nrc-interp") == single

    def test_constructor_validation(self):
        forest = _forest(NATURAL)
        prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
        with pytest.raises(ExecError, match="at least 1"):
            ShardedEvaluator(prepared, num_shards=0)
        with pytest.raises(ExecError, match="valid schemes"):
            ShardedEvaluator(prepared, scheme="zigzag")
        with pytest.raises(ExecError, match="K-set forest"):
            ShardedEvaluator(prepared).evaluate("not a forest")


def test_documents_round_trip_through_pickle():
    """KSet/UTree __reduce__: what process-pool sharding ships to workers."""
    import pickle

    for semiring in (NATURAL, PROVENANCE):
        forest = _forest(semiring, num_trees=4)
        assert pickle.loads(pickle.dumps(forest)) == forest
