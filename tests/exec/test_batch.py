"""Batched evaluation equals single-shot evaluation, for every registry semiring."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ExecError
from repro.exec import BatchEvaluator, infer_document_var
from repro.kcollections import KSet
from repro.semirings import NATURAL, PROVENANCE, standard_semirings
from repro.uxquery import prepare_query
from repro.workloads import random_forest

REGISTRY_SEMIRINGS = list(standard_semirings())

QUERIES = [
    "($S)/*",
    "($S)/*/*",
    "($S)//c",
    "element out { for $x in $S return element hit { ($x)/* } }",
]


def _documents(semiring, count=6, seed=11):
    return [
        random_forest(semiring, num_trees=3, depth=3, fanout=2, seed=seed + index)
        for index in range(count)
    ]


@pytest.mark.parametrize("semiring", REGISTRY_SEMIRINGS, ids=lambda s: s.name)
@pytest.mark.parametrize("query", QUERIES)
def test_batch_equals_single_shot_every_registry_semiring(semiring, query):
    documents = _documents(semiring)
    prepared = prepare_query(query, semiring, {"S": documents[0]})
    single = [prepared.evaluate({"S": document}) for document in documents]
    batched = BatchEvaluator(prepared).evaluate_many(documents)
    assert batched == single


@pytest.mark.parametrize("semiring", [NATURAL, PROVENANCE], ids=lambda s: s.name)
def test_batch_with_thread_pool_matches_inline(semiring):
    documents = _documents(semiring, count=10)
    prepared = prepare_query("($S)/*/*", semiring, {"S": documents[0]})
    evaluator = BatchEvaluator(prepared)
    inline = evaluator.evaluate_many(documents)
    with ThreadPoolExecutor(max_workers=4) as executor:
        threaded = evaluator.evaluate_many(documents, executor=executor)
    assert threaded == inline


@pytest.mark.parametrize("semiring", REGISTRY_SEMIRINGS, ids=lambda s: s.name)
def test_batch_merged_is_pointwise_union(semiring):
    documents = _documents(semiring, count=4)
    prepared = prepare_query("($S)/*", semiring, {"S": documents[0]})
    merged = BatchEvaluator(prepared).evaluate_merged(documents)
    expected = KSet.empty(semiring)
    for document in documents:
        expected = expected.union(prepared.evaluate({"S": document}))
    assert merged == expected


def test_batch_interpreter_methods_agree():
    documents = _documents(NATURAL, count=3)
    prepared = prepare_query("($S)/*/*", NATURAL, {"S": documents[0]})
    evaluator = BatchEvaluator(prepared)
    compiled = evaluator.evaluate_many(documents)
    assert evaluator.evaluate_many(documents, method="nrc-codegen") == compiled
    assert evaluator.evaluate_many(documents, method="nrc") == compiled
    assert evaluator.evaluate_many(documents, method="nrc-interp") == compiled
    assert evaluator.evaluate_many(documents, method="direct") == compiled


def test_batch_executes_the_generated_program():
    """The default batch path runs codegen bytecode, observably (calls)."""
    documents = _documents(NATURAL, count=5)
    prepared = prepare_query("($S)/*/*", NATURAL, {"S": documents[0]})
    assert prepared.generated is not None
    before = prepared.generated.calls
    BatchEvaluator(prepared).evaluate_many(documents)
    assert prepared.generated.calls == before + len(documents)
    # Forcing the closure method leaves the generated counter untouched.
    BatchEvaluator(prepared).evaluate_many(documents, method="nrc")
    assert prepared.generated.calls == before + len(documents)


def test_batch_env_constants_are_shared():
    documents = _documents(NATURAL, count=3)
    prepared = prepare_query(
        "for $x in $S where name($x) = $l return ($x)/*",
        NATURAL,
        env_types={"S": "forest", "l": "label"},
    )
    evaluator = BatchEvaluator(prepared, var="S")
    batched = evaluator.evaluate_many(documents, env={"l": "a"})
    single = [prepared.evaluate({"S": document, "l": "a"}) for document in documents]
    assert batched == single


def test_empty_batch_returns_empty_list():
    documents = _documents(NATURAL, count=1)
    prepared = prepare_query("($S)/*", NATURAL, {"S": documents[0]})
    assert BatchEvaluator(prepared).evaluate_many([]) == []


def test_infer_document_var():
    forest = _documents(NATURAL, count=1)[0]
    prepared = prepare_query("($D)/*", NATURAL, {"D": forest})
    assert infer_document_var(prepared) == "D"
    two_forests = prepare_query(
        "($A)/*, ($B)/*", NATURAL, env_types={"A": "forest", "B": "forest"}
    )
    with pytest.raises(ExecError, match="pass var="):
        BatchEvaluator(two_forests)


def test_explicit_var_must_be_free_in_the_query():
    forest = _documents(NATURAL, count=1)[0]
    prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
    with pytest.raises(ExecError, match="not a free variable"):
        BatchEvaluator(prepared, var="T")


def test_merged_rejects_non_forest_results():
    forest = _documents(NATURAL, count=1)[0]
    prepared = prepare_query("element out { ($S)/* }", NATURAL, {"S": forest})
    with pytest.raises(ExecError, match="K-set results"):
        BatchEvaluator(prepared).evaluate_merged([forest])


class TestProcessPool:
    def test_process_pool_matches_inline(self):
        from concurrent.futures import ProcessPoolExecutor

        documents = _documents(NATURAL, count=4)
        prepared = prepare_query("($S)/*/*", NATURAL, {"S": documents[0]})
        evaluator = BatchEvaluator(prepared)
        inline = evaluator.evaluate_many(documents)
        with ProcessPoolExecutor(max_workers=2) as executor:
            assert evaluator.evaluate_many(documents, executor=executor) == inline

    def test_process_pool_rejects_unregistered_semiring(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.semirings import BOOLEAN, ProductSemiring

        semiring = ProductSemiring(BOOLEAN, NATURAL)  # not in the registry
        documents = _documents(semiring, count=2)
        prepared = prepare_query("($S)/*", semiring, {"S": documents[0]})
        with ProcessPoolExecutor(max_workers=1) as executor:
            with pytest.raises(ExecError, match="registry"):
                BatchEvaluator(prepared).evaluate_many(documents, executor=executor)
