"""Wiring: documents=/executor= on the engine, method validation, CLI batch."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.cli import main
from repro.errors import UXQueryEvalError
from repro.exec import default_plan_cache
from repro.semirings import NATURAL
from repro.uxquery import evaluate_query, prepare_query
from repro.uxquery.engine import VALID_METHODS, validate_method
from repro.workloads import random_forest


def _documents(count=4):
    return [random_forest(NATURAL, 3, 3, 2, seed=100 + i) for i in range(count)]


class TestMethodValidation:
    def test_valid_methods_pass_through(self):
        for method in VALID_METHODS:
            assert validate_method(method) == method

    def test_unknown_method_lists_valid_ones(self):
        with pytest.raises(UXQueryEvalError) as excinfo:
            validate_method("turbo")
        message = str(excinfo.value)
        for method in VALID_METHODS:
            assert repr(method) in message

    def test_prepared_evaluate_rejects_unknown_method(self):
        documents = _documents(1)
        prepared = prepare_query("($S)/*", NATURAL, {"S": documents[0]})
        with pytest.raises(UXQueryEvalError, match="valid methods"):
            prepared.evaluate({"S": documents[0]}, method="fastest")

    def test_evaluate_query_rejects_unknown_method(self):
        documents = _documents(1)
        with pytest.raises(UXQueryEvalError, match="valid methods"):
            evaluate_query("($S)/*", NATURAL, {"S": documents[0]}, method="fastest")


class TestEngineBatchWiring:
    def test_documents_parameter_on_evaluate_query(self):
        documents = _documents()
        results = evaluate_query("($S)/*/*", NATURAL, documents=documents)
        single = [
            evaluate_query("($S)/*/*", NATURAL, {"S": document}) for document in documents
        ]
        assert results == single

    def test_documents_with_executor(self):
        documents = _documents()
        with ThreadPoolExecutor(max_workers=2) as executor:
            results = evaluate_query(
                "($S)//c", NATURAL, documents=documents, executor=executor
            )
        single = [
            evaluate_query("($S)//c", NATURAL, {"S": document}) for document in documents
        ]
        assert results == single

    def test_documents_with_explicit_var(self):
        documents = _documents(2)
        results = evaluate_query(
            "($D)/*", NATURAL, documents=documents, document_var="D"
        )
        assert results == [
            evaluate_query("($D)/*", NATURAL, {"D": document}) for document in documents
        ]

    def test_prepared_evaluate_documents(self):
        documents = _documents(3)
        prepared = prepare_query("($S)/*", NATURAL, {"S": documents[0]})
        results = prepared.evaluate(documents=documents)
        assert results == [prepared.evaluate({"S": document}) for document in documents]

    def test_empty_documents_list_returns_empty(self):
        assert evaluate_query("($S)/*", NATURAL, documents=[]) == []

    def test_empty_documents_still_validate_method_and_query(self):
        from repro.errors import UXQuerySyntaxError

        with pytest.raises(UXQueryEvalError, match="valid methods"):
            evaluate_query("($S)/*", NATURAL, documents=[], method="nrcc")
        with pytest.raises(UXQuerySyntaxError):
            evaluate_query("for $x in", NATURAL, documents=[])

    def test_mismatched_document_var_fails_loudly(self):
        """Documents bound to a non-free variable must not be silently ignored."""
        from repro.errors import ExecError

        documents = _documents(2)
        with pytest.raises(ExecError, match="not a free variable"):
            evaluate_query(
                "($D)/*", NATURAL, env={"D": documents[0]}, documents=documents
            )

    def test_mismatched_document_var_without_env_hints_at_document_var(self):
        from repro.errors import UXQueryTypeError

        documents = _documents(2)
        with pytest.raises(UXQueryTypeError, match="document_var="):
            evaluate_query("($D)/*", NATURAL, documents=documents)


BAG_DOCS = {
    "one.xml": '<a><b annot="2"/><b annot="3"/></a>',
    "two.xml": '<a><b annot="1"/><c annot="4"/></a>',
    "three.xml": '<a><c annot="5"/></a>',
}


@pytest.fixture
def document_dir(tmp_path):
    for name, text in BAG_DOCS.items():
        (tmp_path / name).write_text(text, encoding="utf-8")
    (tmp_path / "ignored.txt").write_text("not xml", encoding="utf-8")
    return str(tmp_path)


class TestCliBatch:
    def test_batch_per_file_output(self, document_dir, capsys):
        assert (
            main(
                ["batch", "--query", "($S)/*", "--dir", document_dir, "--semiring", "N"]
            )
            == 0
        )
        output = capsys.readouterr().out
        # Files are processed in sorted order, each under its own header.
        assert output.index("== one.xml") < output.index("== three.xml") < output.index(
            "== two.xml"
        )
        assert "b^{5}" in output  # one.xml: the two b's merge
        assert "c^{5}" in output  # three.xml

    def test_batch_merged_output(self, document_dir, capsys):
        assert (
            main(
                [
                    "batch",
                    "--query",
                    "($S)/*",
                    "--dir",
                    document_dir,
                    "--semiring",
                    "N",
                    "--merge",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "==" not in output
        assert "b^{6}" in output  # 2+3 from one.xml, 1 from two.xml
        assert "c^{9}" in output  # 4 from two.xml, 5 from three.xml

    def test_batch_with_jobs(self, document_dir, capsys):
        assert (
            main(
                [
                    "batch",
                    "--query",
                    "($S)/*",
                    "--dir",
                    document_dir,
                    "--semiring",
                    "N",
                    "--jobs",
                    "3",
                ]
            )
            == 0
        )
        assert "b^{5}" in capsys.readouterr().out

    def test_batch_uses_the_plan_cache(self, document_dir, capsys):
        before = default_plan_cache().stats().compiles
        query = "($S)/*, ($S)//zzz"  # unlikely to collide with other tests
        assert main(["batch", "--query", query, "--dir", document_dir, "-k", "N"]) == 0
        assert main(["batch", "--query", query, "--dir", document_dir, "-k", "N"]) == 0
        capsys.readouterr()
        assert default_plan_cache().stats().compiles == before + 1

    def test_batch_empty_directory_errors(self, tmp_path, capsys):
        assert main(["batch", "--query", "($S)/*", "--dir", str(tmp_path)]) == 1
        assert "no documents" in capsys.readouterr().err

    def test_batch_method_choices_enforced(self, document_dir, capsys):
        with pytest.raises(SystemExit):
            main(
                [
                    "batch",
                    "--query",
                    "($S)/*",
                    "--dir",
                    document_dir,
                    "--method",
                    "turbo",
                ]
            )

    def test_query_method_flag_reaches_interpreter(self, document_dir, capsys):
        document = f"{document_dir}/one.xml"
        for method in ("nrc", "nrc-interp", "direct"):
            assert (
                main(
                    [
                        "query",
                        "--query",
                        "($S)/*",
                        "--input",
                        document,
                        "--semiring",
                        "N",
                        "--method",
                        method,
                    ]
                )
                == 0
            )
            assert "b^{5}" in capsys.readouterr().out
