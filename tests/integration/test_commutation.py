"""Theorem 1 / Corollary 1: query evaluation commutes with semiring homomorphisms.

For every K1-UXML value v, every homomorphism h : K1 -> K2 and every query p:
``H(p(v)) = H(p)(H(v))`` where H is the lifting of h to values and queries.
We check this on the paper's figures and on randomized workloads, for the
homomorphisms that matter in the applications (valuations out of N[X],
duplicate elimination N -> B, and the provenance hierarchy).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nrc import evaluate as evaluate_nrc, map_scalars
from repro.nrc.values import map_value_annotations
from repro.paperdata import (
    figure1_query,
    figure1_source,
    figure4_query,
    figure4_source,
    figure5_source_uxml,
    figure5_uxquery,
)
from repro.semirings import (
    BOOLEAN,
    CLEARANCE,
    NATURAL,
    PROVENANCE,
    TROPICAL,
    duplicate_elimination,
    polynomial_to_lineage,
    polynomial_to_posbool,
    polynomial_to_why,
    polynomial_valuation,
)
from repro.uxquery import evaluate_query, prepare_query
from repro.workloads import random_forest, random_query, standard_query_suite

FIGURES = [
    (figure1_query(), "S", figure1_source),
    (figure4_query(), "T", figure4_source),
    (figure5_uxquery(), "d", figure5_source_uxml),
]


def _check_commutation(query, variable, source, hom):
    """H(p(v)) == p(H(v)) — scalars in these queries are absent or trivial."""
    annotated = evaluate_query(query, hom.source, {variable: source})
    specialized_after = map_value_annotations(annotated, hom)
    specialized_before = evaluate_query(
        query, hom.target, {variable: map_value_annotations(source, hom)}
    )
    assert specialized_after == specialized_before


@pytest.mark.parametrize("query,variable,source_fn", FIGURES, ids=["fig1", "fig4", "fig5"])
@pytest.mark.parametrize(
    "target,values",
    [
        (BOOLEAN, [True, False]),
        (NATURAL, [0, 1, 2, 3]),
        (TROPICAL, [0.0, 1.0, 2.5, float("inf")]),
        (CLEARANCE, ["P", "C", "S", "T"]),
    ],
    ids=lambda item: getattr(item, "name", ""),
)
def test_corollary1_valuations_on_paper_figures(query, variable, source_fn, target, values):
    source = source_fn()
    from repro.provenance import tokens_used

    tokens = sorted(tokens_used(source))
    valuation = {token: values[index % len(values)] for index, token in enumerate(tokens)}
    hom = polynomial_valuation(valuation, target)
    _check_commutation(query, variable, source, hom)


@pytest.mark.parametrize("query,variable,source_fn", FIGURES, ids=["fig1", "fig4", "fig5"])
@pytest.mark.parametrize(
    "hom_factory",
    [polynomial_to_posbool, polynomial_to_why, polynomial_to_lineage],
    ids=["posbool", "why", "lineage"],
)
def test_corollary1_provenance_hierarchy(query, variable, source_fn, hom_factory):
    _check_commutation(query, variable, source_fn(), hom_factory())


def test_corollary1_duplicate_elimination_on_workloads():
    """Section 6.4: Boolean evaluation factors through bag evaluation plus dedup."""
    dagger = duplicate_elimination()
    for seed in range(3):
        forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=seed)
        for name, query in standard_query_suite().items():
            _check_commutation(query, "S", forest, dagger)


def test_corollary1_on_random_queries_and_forests():
    for seed in range(4):
        forest = random_forest(PROVENANCE, num_trees=2, depth=3, fanout=2, seed=seed)
        query = random_query(seed)
        from repro.provenance import tokens_used

        valuation = {token: (index % 3) for index, token in enumerate(sorted(tokens_used(forest)))}
        hom = polynomial_valuation(valuation, NATURAL)
        _check_commutation(query, "S", forest, hom)


def test_theorem1_on_nrc_expressions_with_scalars():
    """The full Theorem 1 statement, including H applied to the query's scalars."""
    from repro.nrc import BigUnion, Scale, Singleton, Union, Var

    expr = Union(
        Scale(NATURAL.from_int(2), BigUnion("x", Var("R"), Singleton(Var("x")))),
        Scale(NATURAL.from_int(3), Var("R")),
    )
    dagger = duplicate_elimination()
    from repro.kcollections import KSet

    for table in [{"a": 1, "b": 0}, {"a": 2}, {}]:
        value = KSet(NATURAL, table)
        lhs = map_value_annotations(evaluate_nrc(expr, NATURAL, {"R": value}), dagger)
        transformed = map_scalars(expr, dagger)
        rhs = evaluate_nrc(transformed, BOOLEAN, {"R": map_value_annotations(value, dagger)})
        assert lhs == rhs


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=0, max_value=10),
    st.dictionaries(st.sampled_from(["t1", "t2", "t3", "t4"]), st.integers(0, 3), max_size=4),
)
def test_corollary1_property_based(seed, partial_valuation):
    from repro.provenance import tokens_used
    from repro.workloads import token_annotated_forest

    forest = token_annotated_forest(num_trees=1, depth=2, fanout=2, seed=seed)
    valuation = {token: partial_valuation.get(token, 1) for token in tokens_used(forest)}
    # tokens are named v1, v2, ... so extend the partial valuation over them
    valuation = {token: partial_valuation.get(f"t{index % 4 + 1}", index % 3) for index, token in enumerate(sorted(valuation))}
    hom = polynomial_valuation(valuation, NATURAL)
    _check_commutation("element out { $S//a }", "S", forest, hom)


def test_prepared_query_commutation_both_methods():
    """Commutation holds for the compiled and the direct interpreter alike."""
    source = figure4_source()
    from repro.provenance import tokens_used

    valuation = {token: True for token in tokens_used(source)}
    hom = polynomial_valuation(valuation, BOOLEAN)
    prepared_nx = prepare_query(figure4_query(), PROVENANCE, {"T": source})
    boolean_source = map_value_annotations(source, hom)
    prepared_b = prepare_query(figure4_query(), BOOLEAN, {"T": boolean_source})
    for method in ("nrc", "direct"):
        after = map_value_annotations(prepared_nx.evaluate({"T": source}, method=method), hom)
        before = prepared_b.evaluate({"T": boolean_source}, method=method)
        assert after == before
