"""Propositions 2, 3 and 4, and the agreement of all three query semantics."""

from __future__ import annotations

import pytest

from repro.kcollections import KSet
from repro.nrc import (
    Pair,
    Var,
    evaluate as evaluate_nrc,
    join_expr,
    kset_to_relation_rows,
    project_expr,
    relation_to_kset,
    select_eq_expr,
    union_all,
)
from repro.provenance import max_polynomial_size, proposition2_bound, tokens_used
from repro.relational import KRelation
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, DivisorLatticeSemiring
from repro.uxml import forest_size
from repro.uxquery import evaluate_query, parse_query, prepare_query, query_size
from repro.workloads import (
    random_forest,
    standard_query_suite,
    token_annotated_forest,
)


class TestProposition2:
    """Provenance polynomial sizes stay within the O(|v|^|p|) bound."""

    @pytest.mark.parametrize("depth,fanout", [(2, 2), (2, 3), (3, 2)])
    def test_bound_on_token_annotated_forests(self, depth, fanout):
        forest = token_annotated_forest(num_trees=2, depth=depth, fanout=fanout, seed=depth * 10 + fanout)
        document_size = forest_size(forest)
        for name, text in standard_query_suite().items():
            query = parse_query(text)
            answer = evaluate_query(query, PROVENANCE, {"S": forest})
            measured = max_polynomial_size(answer.children)
            assert measured <= proposition2_bound(document_size, query_size(query)), name

    def test_bound_on_paper_figures(self):
        from repro.paperdata import (
            figure1_query,
            figure1_source,
            figure4_query,
            figure4_source,
        )

        for text, variable, source in [
            (figure1_query(), "S", figure1_source()),
            (figure4_query(), "T", figure4_source()),
        ]:
            answer = evaluate_query(text, PROVENANCE, {variable: source})
            bound = proposition2_bound(forest_size(source), query_size(parse_query(text)))
            assert max_polynomial_size(answer.children) <= bound

    def test_polynomials_grow_with_document_size(self):
        """The measured sizes grow strictly with the document (shape check).

        Uses a uniform-label document so that every root-to-leaf path contributes
        a monomial to the same answer item.
        """
        from repro.uxml import TreeBuilder

        def uniform_tree(fanout: int):
            b = TreeBuilder(PROVENANCE)
            counter = [0]

            def token():
                counter[0] += 1
                return f"u{counter[0]}"

            leaves = [b.leaf("leaf")]
            middle = [
                b.tree("n", *[(leaves[0], token()) for _ in range(fanout)])
                for _ in range(fanout)
            ]
            root = b.tree("r", *[(node, token()) for node in middle])
            return b.forest(root)

        sizes = []
        for fanout in (2, 3, 4):
            answer = evaluate_query("element out { $S//leaf }", PROVENANCE, {"S": uniform_tree(fanout)})
            sizes.append(max_polynomial_size(answer.children))
        assert sizes == sorted(sizes)
        assert sizes[0] < sizes[-1]


class TestProposition3:
    """Equivalent UXQueries agree on distributive-lattice annotations."""

    EQUIVALENT_PAIRS = [
        # Figure 1's iteration query vs its XPath short form (footnote 6).
        (
            "element p { for $t in $S return for $x in ($t)/* return ($x)/* }",
            "element p { $S/*/* }",
        ),
        # descendant spelled via // vs the explicit axis.
        ("element p { $S//c }", "element p { $S/descendant::c }"),
        # A sequence union is commutative.
        ("element p { $S/a, $S/b }", "element p { $S/b, $S/a }"),
    ]

    @pytest.mark.parametrize("left,right", EQUIVALENT_PAIRS)
    def test_on_clearance_and_divisor_lattices(self, left, right):
        from repro.semirings import CLEARANCE

        lattices = [CLEARANCE, DivisorLatticeSemiring(30)]
        for lattice in lattices:
            samples = [value for value in lattice.sample_elements() if not lattice.is_zero(value)]
            forest = random_forest(
                lattice,
                num_trees=2,
                depth=3,
                fanout=2,
                seed=11,
                annotation_fn=lambda rng: rng.choice(samples),
            )
            assert evaluate_query(left, lattice, {"S": forest}) == evaluate_query(
                right, lattice, {"S": forest}
            )

    def test_counterexample_on_naturals(self):
        """The same pair of queries can disagree over N (multiplicities differ),
        which is why Proposition 3 needs the lattice assumption."""
        left = "element p { $S/a, $S/a }"
        right = "element p { $S/a }"
        forest = random_forest(NATURAL, num_trees=1, depth=2, fanout=2, seed=3,
                               annotation_fn=lambda rng: 1)
        boolean_forest = random_forest(BOOLEAN, num_trees=1, depth=2, fanout=2, seed=3,
                                       annotation_fn=lambda rng: True)
        assert evaluate_query(left, BOOLEAN, {"S": boolean_forest}) == evaluate_query(
            right, BOOLEAN, {"S": boolean_forest}
        )
        if not evaluate_query("element p { $S/a }", NATURAL, {"S": forest}).children.is_empty():
            assert evaluate_query(left, NATURAL, {"S": forest}) != evaluate_query(
                right, NATURAL, {"S": forest}
            )


class TestProposition4:
    """NRC(RA+) on encoded K-relations agrees with the K-relational algebra."""

    def _encode(self, relation: KRelation) -> KSet:
        return relation_to_kset(relation.semiring, list(relation.items()))

    def test_projection(self):
        relation = KRelation(NATURAL, ("A", "B"), [(("a", "x"), 2), (("a", "y"), 3)])
        expr = project_expr(Var("R"), 2, [0])
        result = evaluate_nrc(expr, NATURAL, {"R": self._encode(relation)})
        assert kset_to_relation_rows(result, 1) == [(("a",), 5)]
        assert relation.project(["A"]).annotation(("a",)) == 5

    def test_selection(self):
        relation = KRelation(NATURAL, ("A", "B"), [(("a", "x"), 2), (("b", "x"), 7)])
        expr = select_eq_expr(Var("R"), 2, 0, "a")
        result = evaluate_nrc(expr, NATURAL, {"R": self._encode(relation)})
        expected = relation.select_eq("A", "a")
        assert kset_to_relation_rows(result, 2) == sorted(expected.items())

    def test_join_and_union_match_figure5(self):
        """The Figure 5 query expressed with the NRC(RA+) builders."""
        from repro.paperdata import figure5_expected_q, figure5_relations

        db = figure5_relations()
        r_encoded = self._encode(db["R"])
        s_encoded = self._encode(db["S"])
        pi_ab = project_expr(Var("R"), 3, [0, 1])
        pi_bc = project_expr(Var("R"), 3, [1, 2])
        right = union_all([pi_bc, Var("S")])
        joined = join_expr(pi_ab, 2, right, 2, 1, 0, [("left", 0), ("right", 1)])
        result = evaluate_nrc(joined, PROVENANCE, {"R": r_encoded, "S": s_encoded})
        expected = figure5_expected_q()
        assert dict(kset_to_relation_rows(result, 2)) == {row: ann for row, ann in expected.items()}

    def test_union_adds_annotations(self):
        relation = KRelation(NATURAL, ("A",), [(("a",), 2)])
        expr = union_all([Var("R"), Var("R")])
        result = evaluate_nrc(expr, NATURAL, {"R": self._encode(relation)})
        assert kset_to_relation_rows(result, 1) == [(("a",), 4)]


class TestThreeSemanticsAgree:
    """Compiled NRC, the direct interpreter, and (for paths) shredded Datalog agree."""

    @pytest.mark.parametrize("seed", range(3))
    def test_nrc_vs_direct_on_random_workloads(self, seed):
        forest = random_forest(PROVENANCE, num_trees=2, depth=3, fanout=2, seed=seed)
        for name, text in standard_query_suite().items():
            prepared = prepare_query(text, PROVENANCE, {"S": forest})
            assert prepared.evaluate({"S": forest}, method="nrc") == prepared.evaluate(
                {"S": forest}, method="direct"
            ), name

    @pytest.mark.parametrize("seed", range(3))
    def test_paths_vs_shredded_datalog(self, seed):
        from repro.shredding import evaluate_xpath_via_datalog
        from repro.uxquery.ast import Step

        forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=seed)
        steps = [Step("descendant-or-self", "*"), Step("child", "a")]
        answer_query = evaluate_query("$S//a", NATURAL, {"S": forest})
        assert evaluate_xpath_via_datalog(forest, steps) == answer_query

    def test_figures_by_all_methods(self):
        from repro.paperdata import figure4_expected_children, figure4_query, figure4_source
        from repro.shredding import evaluate_xpath_via_datalog
        from repro.uxquery.ast import Step

        source = figure4_source()
        expected = dict(figure4_expected_children().items())
        for method in ("nrc", "direct"):
            answer = evaluate_query(figure4_query(), PROVENANCE, {"T": source}, method=method)
            assert dict(answer.children.items()) == expected
        shredded = evaluate_xpath_via_datalog(
            source, [Step("descendant-or-self", "*"), Step("child", "c")]
        )
        assert dict(shredded.items()) == expected
