"""Property-based differential testing across the whole pipeline.

These tests generate random annotated documents with hypothesis and check the
library's central invariants end to end:

* the compiled (NRC_K + srt) and direct semantics agree on every query family;
* parsing/serializing documents round-trips;
* shredding and unshredding round-trips;
* query evaluation is monotone in the source (adding data never removes
  answers) — a consequence of positivity;
* the engine never mutates its inputs (values are immutable).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kcollections import KSet
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, Polynomial
from repro.uxml import UTree, parse_forest, forest_to_xml
from repro.uxquery import evaluate_query, prepare_query
from repro.shredding import shred_forest, unshred
from repro.workloads import standard_query_suite

# ---------------------------------------------------------------------------
# Random K-UXML generators (hypothesis strategies)
# ---------------------------------------------------------------------------
_LABELS = st.sampled_from(["a", "b", "c", "d"])
_NAT_ANNOTATIONS = st.integers(min_value=1, max_value=3)


def _nat_trees(max_depth: int):
    if max_depth <= 1:
        return st.builds(lambda label: UTree(label, KSet.empty(NATURAL)), _LABELS)
    children = st.lists(
        st.tuples(_nat_trees(max_depth - 1), _NAT_ANNOTATIONS), min_size=0, max_size=3
    )
    return st.builds(
        lambda label, kids: UTree(label, KSet(NATURAL, kids)), _LABELS, children
    )


_NAT_FORESTS = st.lists(
    st.tuples(_nat_trees(3), _NAT_ANNOTATIONS), min_size=1, max_size=3
).map(lambda members: KSet(NATURAL, members))

_QUERIES = st.sampled_from(sorted(standard_query_suite().items()))


@settings(max_examples=40, deadline=None)
@given(_NAT_FORESTS, _QUERIES)
def test_compiled_and_direct_semantics_agree(forest, named_query):
    _, query = named_query
    prepared = prepare_query(query, NATURAL, {"S": forest})
    assert prepared.evaluate({"S": forest}, method="nrc") == prepared.evaluate(
        {"S": forest}, method="direct"
    )


@settings(max_examples=40, deadline=None)
@given(_NAT_FORESTS)
def test_xml_round_trip(forest):
    assert parse_forest(forest_to_xml(forest), NATURAL) == forest


@settings(max_examples=40, deadline=None)
@given(_NAT_FORESTS)
def test_shredding_round_trip(forest):
    assert unshred(shred_forest(forest), NATURAL) == forest


@settings(max_examples=30, deadline=None)
@given(_NAT_FORESTS, _NAT_FORESTS, _QUERIES)
def test_positivity_monotonicity(left, right, named_query):
    """Adding data never removes answers (over N every annotation only grows)."""
    _, query = named_query
    small = evaluate_query(query, NATURAL, {"S": left})
    combined = evaluate_query(query, NATURAL, {"S": left.union(right)})
    for member, annotation in small.children.items():
        assert combined.children.annotation(member) >= annotation


@settings(max_examples=30, deadline=None)
@given(_NAT_FORESTS, _QUERIES)
def test_evaluation_does_not_mutate_inputs(forest, named_query):
    _, query = named_query
    snapshot = KSet(NATURAL, list(forest.items()))
    evaluate_query(query, NATURAL, {"S": forest})
    assert forest == snapshot


@settings(max_examples=30, deadline=None)
@given(_NAT_FORESTS, _QUERIES)
def test_scaling_the_source_scales_the_answer(forest, named_query):
    """Linearity in the source: the workload queries use each root once per
    derivation, so multiplying every root annotation by 2 exactly doubles every
    answer annotation (a consequence of the semimodule laws)."""
    _, query = named_query
    answer = evaluate_query(query, NATURAL, {"S": forest})
    doubled = evaluate_query(query, NATURAL, {"S": forest.scale(2)})
    assert doubled.children.support() == answer.children.support()
    for member, annotation in answer.children.items():
        assert doubled.children.annotation(member) == 2 * annotation


@settings(max_examples=25, deadline=None)
@given(_NAT_FORESTS, _QUERIES)
def test_boolean_answers_are_supports_of_bag_answers(forest, named_query):
    """dagger(p_N(v)) == p_B(dagger(v)) — support of the bag answer equals the set answer."""
    from repro.nrc.values import map_value_annotations
    from repro.semirings import duplicate_elimination

    _, query = named_query
    dagger = duplicate_elimination()
    bag_answer = evaluate_query(query, NATURAL, {"S": forest})
    boolean_answer = evaluate_query(
        query, BOOLEAN, {"S": map_value_annotations(forest, dagger)}
    )
    assert map_value_annotations(bag_answer, dagger) == boolean_answer
