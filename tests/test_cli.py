"""The command-line front end."""

from __future__ import annotations

import pytest

from repro.cli import main

FIGURE1_XML = """
<a annot="z">
  <b annot="x1"> <d annot="y1"/> </b>
  <c annot="x2"> <d annot="y2"/> <e annot="y3"/> </c>
</a>
"""


@pytest.fixture
def document_path(tmp_path):
    path = tmp_path / "figure1.xml"
    path.write_text(FIGURE1_XML, encoding="utf-8")
    return str(path)


class TestCli:
    def test_semirings_listing(self, capsys):
        assert main(["semirings"]) == 0
        output = capsys.readouterr().out
        assert "provenance-polynomials" in output
        assert "boolean" in output

    def test_query_paper_output(self, document_path, capsys):
        exit_code = main(
            [
                "query",
                "--query",
                "element p { $S/*/* }",
                "--input",
                document_path,
                "--semiring",
                "N[X]",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "d^{x1*y1*z + x2*y2*z}" in output
        assert "e^{x2*y3*z}" in output

    def test_query_from_file_and_xml_output(self, document_path, tmp_path, capsys):
        query_path = tmp_path / "query.uxq"
        query_path.write_text("element p { $S//d }", encoding="utf-8")
        exit_code = main(
            [
                "query",
                "--query",
                f"@{query_path}",
                "--input",
                document_path,
                "--format",
                "xml",
                "--method",
                "direct",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert output.strip().startswith("<p>")
        assert "annot=" in output

    def test_query_over_natural_semiring(self, tmp_path, capsys):
        path = tmp_path / "bag.xml"
        path.write_text('<a><b annot="2"/><b annot="3"/></a>', encoding="utf-8")
        assert main(["query", "--query", "($S)/*", "--input", str(path), "--semiring", "N"]) == 0
        assert "b^{5}" in capsys.readouterr().out

    def test_specialize(self, document_path, capsys):
        exit_code = main(
            [
                "specialize",
                "--input",
                document_path,
                "--semiring",
                "N",
                "--set",
                "x1=2",
                "--set",
                "y1=3",
                "--format",
                "paper",
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "b^{2}" in output
        assert "d^{3}" in output

    def test_specialize_rejects_bad_binding(self, document_path, capsys):
        exit_code = main(
            ["specialize", "--input", document_path, "--semiring", "N", "--set", "oops"]
        )
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_shred(self, document_path, capsys):
        assert main(["shred", "--input", document_path]) == 0
        output = capsys.readouterr().out
        assert "pid | nid | label" in output
        assert "x1" in output

    def test_missing_file(self, capsys):
        exit_code = main(["query", "--query", "($S)", "--input", "/does/not/exist.xml"])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err

    def test_bad_query_reports_error(self, document_path, capsys):
        exit_code = main(["query", "--query", "for $x in", "--input", document_path])
        assert exit_code == 1
        assert "error" in capsys.readouterr().err


class TestCliExplain:
    def test_explain_prints_generated_source(self, capsys):
        assert main(["explain", "-q", "element out { $S/*/* }", "-k", "N"]) == 0
        output = capsys.readouterr().out
        assert "simplified" in output
        assert "nrc-codegen" in output
        assert "def _nrc_program(frame):" in output
        assert "_from_normalized" in output

    def test_explain_reports_fallback_reason(self, capsys):
        assert main(["explain", "-q", "element out { $S//c }", "-k", "N"]) == 0
        output = capsys.readouterr().out
        assert "closure fallback" in output
        assert "srt" in output

    def test_explain_with_extra_typed_variables(self, capsys):
        query = "for $x in $S where name($x) = $l return ($x)/*"
        assert main(["explain", "-q", query, "-k", "N", "--type", "l=label"]) == 0
        output = capsys.readouterr().out
        assert "def _nrc_program(frame):" in output

    def test_explain_rejects_bad_type_declaration(self, capsys):
        exit_code = main(["explain", "-q", "($S)", "--type", "l=bogus"])
        assert exit_code == 1
        assert "forest|tree|label" in capsys.readouterr().err

    def test_query_accepts_codegen_method(self, document_path, capsys):
        assert (
            main(
                [
                    "query",
                    "--query",
                    "($S)/*",
                    "--input",
                    document_path,
                    "--method",
                    "nrc-codegen",
                ]
            )
            == 0
        )
        assert capsys.readouterr().out.strip()


class TestCliHelpText:
    """Every promised command and flag shows up in the help output."""

    def _help_of(self, capsys, argv: list[str]) -> str:
        with pytest.raises(SystemExit) as stop:
            main(argv + ["--help"])
        assert stop.value.code == 0
        return capsys.readouterr().out

    def test_top_level_help_lists_every_command(self, capsys):
        output = self._help_of(capsys, [])
        for command in (
            "query", "explain", "batch", "maintain", "cache-stats",
            "metrics", "events", "replay", "report", "bench-check",
            "faults", "specialize", "shred", "store",
        ):
            assert command in output, f"{command!r} missing from top-level help"

    def test_metrics_help_documents_serve(self, capsys):
        output = self._help_of(capsys, ["metrics"])
        assert "--serve" in output
        assert "/metrics" in output and "/readyz" in output

    def test_events_help_documents_the_flight_recorder(self, capsys):
        output = self._help_of(capsys, ["events"])
        assert "--follow" in output
        assert "--kind" in output
        assert "REPRO_EVENT_LOG" in output

    def test_bench_check_help_documents_the_watchdog(self, capsys):
        output = self._help_of(capsys, ["bench-check"])
        assert "--threshold" in output
        assert "--history" in output
        assert "BENCH_history" in output

    def test_replay_help_documents_the_workload_replayer(self, capsys):
        output = self._help_of(capsys, ["replay"])
        assert "--compare" in output
        assert "--store" in output
        assert "--max-rate" in output
        assert "--speed" in output
        assert "REPRO_QUERY_LOG" in output

    def test_report_help_documents_the_aggregator(self, capsys):
        output = self._help_of(capsys, ["report"])
        assert "--sort" in output
        assert "--limit" in output
        assert "signature" in output


class TestCliQueryLog:
    """The replay/report commands and the env-refresh discipline."""

    QUERY = "($S)/*"

    def _captured_store(self, tmp_path, monkeypatch):
        """A store with two documents and a qlog capture of queries over them."""
        from repro.obs import qlog

        document = tmp_path / "doc.xml"
        document.write_text(
            '<a annot="1"><b annot="2"><d annot="1"/></b><c annot="3"/></a>',
            encoding="utf-8",
        )
        store_dir = str(tmp_path / "store")
        capture = tmp_path / "capture.jsonl"
        for doc_id in ("d1", "d2"):
            assert main([
                "store", "ingest", "--dir", store_dir, "--input", str(document),
                "--doc", doc_id, "--semiring", "natural",
            ]) == 0
        monkeypatch.setenv("REPRO_QUERY_LOG", str(capture))
        qlog.refresh_qlog_config()
        try:
            for doc_id in ("d1", "d2"):
                assert main([
                    "store", "query", "--dir", store_dir,
                    "--doc", doc_id, "-q", self.QUERY,
                ]) == 0
        finally:
            monkeypatch.delenv("REPRO_QUERY_LOG")
            qlog.refresh_qlog_config()
        return store_dir, capture

    def test_replay_compare_verifies_digests(self, tmp_path, monkeypatch, capsys):
        store_dir, capture = self._captured_store(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main([
            "replay", str(capture), "--store", store_dir, "--compare", "--max-rate",
        ]) == 0
        output = capsys.readouterr().out
        assert "digest mismatches: 0" in output
        assert "signature mismatches: 0" in output
        assert "replayed 2 store record(s)" in output

    def test_replay_detects_a_tampered_digest(self, tmp_path, monkeypatch, capsys):
        import json

        store_dir, capture = self._captured_store(tmp_path, monkeypatch)
        records = [
            json.loads(line) for line in capture.read_text().splitlines()
        ]
        records[0]["digest"] = "0" * 32
        capture.write_text(
            "".join(json.dumps(record) + "\n" for record in records)
        )
        capsys.readouterr()
        assert main([
            "replay", str(capture), "--store", store_dir, "--compare", "--max-rate",
        ]) == 1
        output = capsys.readouterr().out
        assert "digest mismatches: 1" in output

    def test_replay_without_store_is_prepare_only(self, tmp_path, monkeypatch, capsys):
        _store_dir, capture = self._captured_store(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["replay", str(capture), "--max-rate"]) == 0
        output = capsys.readouterr().out
        assert "re-prepared 2" in output
        assert "signature mismatches: 0" in output

    def test_report_renders_the_signature_table(self, tmp_path, monkeypatch, capsys):
        import json

        _store_dir, capture = self._captured_store(tmp_path, monkeypatch)
        capsys.readouterr()
        assert main(["report", str(capture)]) == 0
        table = capsys.readouterr().out
        first = json.loads(capture.read_text().splitlines()[0])
        assert first["sig"][:16] in table
        assert main(["report", str(capture), "--json", "--sort", "count"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[first["sig"]]["count"] == 2

    def test_events_follow_refreshes_env_config(self, tmp_path, monkeypatch):
        # Regression: long-runners must re-read the observability env vars
        # (the way `metrics --serve` always did) before entering their loop.
        from repro import cli
        from repro.obs import events, profile, qlog

        called: dict = {}
        monkeypatch.setattr(
            cli,
            "_follow_event_log",
            lambda path, kind: (called.setdefault("args", (path, kind)), 0)[-1],
        )
        log = tmp_path / "events.jsonl"
        log.write_text("")
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "77.5")
        monkeypatch.setenv("REPRO_QLOG", "on")
        try:
            assert cli.main(["events", "--follow", "--log", str(log)]) == 0
            assert called["args"] == (str(log), None)
            assert profile.slow_query_ms() == 77.5
            assert qlog.is_recording()
        finally:
            monkeypatch.delenv("REPRO_SLOW_QUERY_MS")
            monkeypatch.delenv("REPRO_QLOG")
            profile.refresh_slow_query_config()
            events.refresh_event_config()
            qlog.refresh_qlog_config()

    def test_replay_and_report_refresh_env_config(self, tmp_path, monkeypatch, capsys):
        from repro.obs import qlog

        _store_dir, capture = self._captured_store(tmp_path, monkeypatch)
        monkeypatch.setenv("REPRO_QLOG", "on")
        try:
            assert main(["report", str(capture)]) == 0
            assert qlog.is_recording()
        finally:
            monkeypatch.delenv("REPRO_QLOG")
            qlog.refresh_qlog_config()
        capsys.readouterr()
