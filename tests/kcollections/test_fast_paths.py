"""The trusted (fast-path) constructors must preserve K-set semantics.

These tests pin down the invariants the fast paths rely on: annotations that
flow between collections stay canonical, zero results of ``mul`` (e.g. empty
lattice meets) are dropped, and a semiring that declares
``ops_preserve_normal_form = False`` transparently falls back to the
defensive constructor.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.kcollections.kset import KSet
from repro.relational.krelation import KRelation
from repro.semirings import NATURAL, PROVENANCE
from repro.semirings.base import Semiring
from repro.semirings.lattice import SubsetLatticeSemiring
from repro.semirings.polynomial import variables


def test_union_merges_and_drops_nothing_for_natural():
    left = KSet(NATURAL, [("a", 2), ("b", 1)])
    right = KSet(NATURAL, [("b", 3), ("c", 4)])
    union = left.union(right)
    assert dict(union.items()) == {"a": 2, "b": 4, "c": 4}


def test_scale_drops_annihilated_members_in_lattice():
    lattice = SubsetLatticeSemiring({"r1", "r2"})
    collection = KSet(lattice, [("a", frozenset({"r1"})), ("b", frozenset({"r1", "r2"}))])
    scaled = collection.scale(frozenset({"r2"}))
    # meet(r2, r1) = {} is the lattice zero: "a" must vanish.
    assert "a" not in scaled
    assert scaled.annotation("b") == frozenset({"r2"})


def test_bind_drops_annihilated_contributions_in_lattice():
    lattice = SubsetLatticeSemiring({"r1", "r2"})
    outer = KSet(lattice, [("x", frozenset({"r1"}))])
    inner = KSet(lattice, [("y", frozenset({"r2"}))])
    assert outer.bind(lambda _: inner).is_empty()


def test_map_merges_collapsing_members():
    x, y = variables("x", "y")
    collection = KSet(PROVENANCE, [("a", x), ("b", y)])
    collapsed = collection.map(lambda _: "same")
    assert collapsed.annotation("same") == x + y


def test_restrict_keeps_annotations_and_accepts_sets():
    collection = KSet(NATURAL, [("a", 1), ("b", 2), ("c", 3)])
    assert dict(collection.restrict({"b", "c"}).items()) == {"b": 2, "c": 3}
    assert dict(collection.restrict(["a", "a"]).items()) == {"a": 1}


def test_filter_preserves_annotations():
    collection = KSet(NATURAL, [("a", 1), ("bb", 2)])
    assert dict(collection.filter(lambda v: len(v) == 2).items()) == {"bb": 2}


class _SloppySemiring(Semiring):
    """Integers mod nothing — but ``add``/``mul`` return floats, so the
    canonical (int) form is *not* preserved and the defensive path must run."""

    name = "sloppy-natural"
    ops_preserve_normal_form = False

    @property
    def zero(self) -> Any:
        return 0

    @property
    def one(self) -> Any:
        return 1

    def add(self, a: Any, b: Any) -> Any:
        return float(a) + float(b)

    def mul(self, a: Any, b: Any) -> Any:
        return float(a) * float(b)

    def is_valid(self, a: Any) -> bool:
        return isinstance(a, (int, float)) and not isinstance(a, bool) and a >= 0

    def normalize(self, a: Any) -> Any:
        return int(a)

    def sample_elements(self) -> Sequence[Any]:
        return [0, 1, 2]


def test_non_preserving_semiring_falls_back_to_defensive_path():
    sloppy = _SloppySemiring()
    left = KSet(sloppy, [("a", 1)])
    right = KSet(sloppy, [("a", 1)])
    union = left.union(right)
    # The defensive constructor re-normalizes the float sum back to int.
    assert union.annotation("a") == 2
    assert isinstance(union.annotation("a"), int)
    bound = union.bind(lambda _: KSet(sloppy, [("b", 2)]))
    assert bound.annotation("b") == 4
    assert isinstance(bound.annotation("b"), int)


def test_krelation_fast_paths_match_defensive_semantics():
    r = KRelation(NATURAL, ("A", "B"), [(("1", "x"), 2), (("2", "y"), 3)])
    s = KRelation(NATURAL, ("A", "B"), [(("1", "x"), 1)])
    assert r.union(s).annotation(("1", "x")) == 3
    projected = r.union(s).project(("B",))
    assert projected.annotation(("x",)) == 3
    joined = r.join(KRelation(NATURAL, ("B", "C"), [(("x", "z"), 5)]))
    assert joined.annotation(("1", "x", "z")) == 10
    renamed = r.rename({"A": "Z"})
    assert renamed.attributes == ("Z", "B")
    assert renamed.annotation(("1", "x")) == 2


def test_krelation_join_drops_annihilated_rows_in_lattice():
    lattice = SubsetLatticeSemiring({"r1", "r2"})
    r = KRelation(lattice, ("A",), [(("1",), frozenset({"r1"}))])
    s = KRelation(lattice, ("A",), [(("1",), frozenset({"r2"}))])
    assert r.join(s).is_empty()
