"""K-collections: construction, algebra, and the free-semimodule laws."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SemiringError
from repro.kcollections import KSet
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, variables


class TestConstruction:
    def test_empty(self):
        empty = KSet.empty(NATURAL)
        assert empty.is_empty()
        assert len(empty) == 0
        assert empty.annotation("a") == 0

    def test_singleton_defaults_to_one(self):
        single = KSet.singleton(NATURAL, "a")
        assert single.annotation("a") == 1
        assert "a" in single

    def test_duplicates_add(self):
        collection = KSet(NATURAL, [("a", 2), ("a", 3), ("b", 1)])
        assert collection.annotation("a") == 5
        assert collection.annotation("b") == 1
        assert len(collection) == 2

    def test_zero_annotations_dropped(self):
        collection = KSet(NATURAL, [("a", 0), ("b", 2)])
        assert "a" not in collection
        assert collection.support() == frozenset({"b"})

    def test_from_values(self):
        collection = KSet.from_values(NATURAL, ["a", "b", "a"])
        assert collection.annotation("a") == 2
        assert collection.annotation("b") == 1

    def test_invalid_annotation_rejected(self):
        from repro.errors import AnnotationError

        with pytest.raises(AnnotationError):
            KSet(NATURAL, [("a", -1)])

    def test_boolean_collections_are_sets(self):
        collection = KSet(BOOLEAN, [("a", True), ("a", True), ("b", False)])
        assert collection.support() == frozenset({"a"})
        assert collection.annotation("a") is True

    def test_immutability(self):
        collection = KSet.singleton(NATURAL, "a")
        with pytest.raises(AttributeError):
            collection.foo = 1  # type: ignore[attr-defined]


class TestAlgebra:
    def test_union_adds_pointwise(self):
        left = KSet(NATURAL, [("a", 1), ("b", 2)])
        right = KSet(NATURAL, [("b", 3), ("c", 4)])
        merged = left.union(right)
        assert merged.annotation("a") == 1
        assert merged.annotation("b") == 5
        assert merged.annotation("c") == 4

    def test_union_operator(self):
        left = KSet.singleton(NATURAL, "a")
        right = KSet.singleton(NATURAL, "a")
        assert (left | right).annotation("a") == 2

    def test_union_requires_same_semiring(self):
        with pytest.raises(SemiringError):
            KSet.empty(NATURAL).union(KSet.empty(BOOLEAN))

    def test_scale(self):
        collection = KSet(NATURAL, [("a", 2), ("b", 3)])
        scaled = collection.scale(4)
        assert scaled.annotation("a") == 8
        assert scaled.annotation("b") == 12

    def test_scale_by_zero_empties(self):
        collection = KSet(NATURAL, [("a", 2)])
        assert collection.scale(0).is_empty()

    def test_scale_by_one_is_identity(self):
        collection = KSet(NATURAL, [("a", 2)])
        assert collection.scale(1) == collection

    def test_bind_multiplies_and_sums(self):
        """The paper's flatten example: {{a^p, b^r}^u, {b^s}^v}."""
        p, r, u, v, s = variables("p", "r", "u", "v", "s")
        inner1 = KSet(PROVENANCE, [("a", p), ("b", r)])
        inner2 = KSet(PROVENANCE, [("b", s)])
        outer = KSet(PROVENANCE, [(inner1, u), (inner2, v)])
        flattened = outer.flatten()
        assert flattened.annotation("a") == u * p
        assert flattened.annotation("b") == u * r + v * s

    def test_bind_requires_kset_results(self):
        collection = KSet(NATURAL, [("a", 1)])
        with pytest.raises(SemiringError):
            collection.bind(lambda value: value)  # type: ignore[arg-type]

    def test_map_collisions_add(self):
        collection = KSet(NATURAL, [("aa", 2), ("ab", 3)])
        mapped = collection.map(lambda value: value[0])
        assert mapped.annotation("a") == 5

    def test_filter(self):
        collection = KSet(NATURAL, [("a", 1), ("b", 2)])
        assert collection.filter(lambda value: value == "b").support() == frozenset({"b"})

    def test_product(self):
        """The paper's product example: {a^p, b^r} x {c^u}."""
        p, r, u = variables("p", "r", "u")
        left = KSet(PROVENANCE, [("a", p), ("b", r)])
        right = KSet(PROVENANCE, [("c", u)])
        product = left.product(right)
        assert product.annotation(("a", "c")) == p * u
        assert product.annotation(("b", "c")) == r * u

    def test_total_annotation(self):
        collection = KSet(NATURAL, [("a", 2), ("b", 3)])
        assert collection.total_annotation() == 5

    def test_restrict(self):
        collection = KSet(NATURAL, [("a", 1), ("b", 2), ("c", 3)])
        assert collection.restrict(["a", "c"]).support() == frozenset({"a", "c"})

    def test_map_annotations_changes_semiring(self):
        collection = KSet(NATURAL, [("a", 0), ("b", 2)])
        as_bool = collection.map_annotations(lambda n: n > 0, BOOLEAN)
        assert as_bool.semiring == BOOLEAN
        assert as_bool.annotation("b") is True


class TestEqualityAndHashing:
    def test_equality_ignores_construction_order(self):
        left = KSet(NATURAL, [("a", 1), ("b", 2)])
        right = KSet(NATURAL, [("b", 2), ("a", 1)])
        assert left == right
        assert hash(left) == hash(right)

    def test_equality_distinguishes_annotations(self):
        assert KSet(NATURAL, [("a", 1)]) != KSet(NATURAL, [("a", 2)])

    def test_equality_distinguishes_semirings(self):
        assert KSet(NATURAL, [("a", 1)]) != KSet(BOOLEAN, [("a", True)])

    def test_ksets_nest(self):
        inner = KSet(NATURAL, [("a", 1)])
        outer = KSet(NATURAL, [(inner, 2)])
        assert outer.annotation(inner) == 2

    def test_repr_is_deterministic(self):
        collection = KSet(NATURAL, [("b", 2), ("a", 1)])
        assert repr(collection) == "KSet{'a'^1, 'b'^2}"


# ---------------------------------------------------------------------------
# Property-based: the free K-semimodule laws of Appendix A
# ---------------------------------------------------------------------------
_values = st.sampled_from(["a", "b", "c", "d"])
_nat_ksets = st.dictionaries(_values, st.integers(min_value=0, max_value=5), max_size=4).map(
    lambda items: KSet(NATURAL, items)
)
_scalars = st.integers(min_value=0, max_value=5)


@settings(max_examples=60, deadline=None)
@given(_nat_ksets, _nat_ksets, _nat_ksets)
def test_union_is_a_commutative_monoid(a, b, c):
    assert a.union(b) == b.union(a)
    assert a.union(b.union(c)) == a.union(b).union(c)
    assert a.union(KSet.empty(NATURAL)) == a


@settings(max_examples=60, deadline=None)
@given(_scalars, _scalars, _nat_ksets, _nat_ksets)
def test_semimodule_laws(k1, k2, a, b):
    assert a.scale(k1).union(b.scale(k1)) == a.union(b).scale(k1)
    assert a.scale(k1 + k2) == a.scale(k1).union(a.scale(k2))
    assert a.scale(k1 * k2) == a.scale(k2).scale(k1)
    assert a.scale(0).is_empty()
    assert a.scale(1) == a


@settings(max_examples=60, deadline=None)
@given(_nat_ksets, _scalars)
def test_bind_is_linear(a, k):
    double = lambda value: KSet(NATURAL, [(value + "!", 2)])
    assert a.scale(k).bind(double) == a.bind(double).scale(k)
    assert KSet.empty(NATURAL).bind(double).is_empty()


@settings(max_examples=60, deadline=None)
@given(_nat_ksets)
def test_bind_monad_laws(a):
    singleton = lambda value: KSet.singleton(NATURAL, value)
    assert a.bind(singleton) == a
    f = lambda value: KSet(NATURAL, [(value + "x", 2), (value + "y", 1)])
    g = lambda value: KSet(NATURAL, [(value + "z", 3)])
    assert a.bind(f).bind(g) == a.bind(lambda value: f(value).bind(g))
