"""Synthetic workload generators: determinism, shape, and typability."""

from __future__ import annotations

import pytest

from repro.errors import WorkloadError
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE
from repro.uxml import forest_size
from repro.uxquery import FOREST, evaluate_query, infer_type, parse_query
from repro.workloads import (
    child_chain_query,
    descendant_query,
    forest_statistics,
    nested_iteration_query,
    random_database,
    random_forest,
    random_query,
    random_relation,
    random_tree,
    reconstruction_query,
    standard_query_suite,
    token_annotated_forest,
)


class TestGenerators:
    def test_random_tree_shape(self):
        tree = random_tree(NATURAL, depth=3, fanout=2, seed=1)
        assert tree.height() == 3
        assert tree.size() == 7

    def test_random_tree_is_deterministic(self):
        assert random_tree(NATURAL, 3, 2, seed=5) == random_tree(NATURAL, 3, 2, seed=5)
        assert random_tree(NATURAL, 3, 2, seed=5) != random_tree(NATURAL, 3, 2, seed=6)

    def test_random_tree_validates_arguments(self):
        with pytest.raises(WorkloadError):
            random_tree(NATURAL, depth=0, fanout=2)
        with pytest.raises(WorkloadError):
            random_tree(NATURAL, depth=2, fanout=-1)

    def test_random_forest_semirings(self):
        for semiring in (BOOLEAN, NATURAL, PROVENANCE):
            forest = random_forest(semiring, num_trees=3, depth=2, fanout=2, seed=2)
            assert forest.semiring == semiring
            assert len(forest) <= 3

    def test_token_annotated_forest_has_distinct_tokens(self):
        forest = token_annotated_forest(num_trees=2, depth=3, fanout=2, seed=0)
        from repro.provenance import tokens_used

        tokens = tokens_used(forest)
        assert len(tokens) == forest_size(forest)

    def test_forest_statistics(self):
        forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=0)
        stats = forest_statistics(forest)
        assert stats["trees"] == len(forest)
        assert stats["nodes"] == forest_size(forest)
        assert stats["max_height"] == 3

    def test_random_relation_and_database(self):
        relation = random_relation(NATURAL, ("A", "B"), num_rows=10, seed=1)
        assert relation.attributes == ("A", "B")
        assert len(relation) <= 10
        database = random_database(PROVENANCE, {"R": ("A", "B"), "S": ("B", "C")}, 5, seed=2, tokens=True)
        assert set(database) == {"R", "S"}
        assert database == random_database(
            PROVENANCE, {"R": ("A", "B"), "S": ("B", "C")}, 5, seed=2, tokens=True
        )


class TestQueryWorkloads:
    def test_query_families_parse_and_typecheck(self):
        for text in [
            child_chain_query(3),
            descendant_query("b"),
            nested_iteration_query(2),
            reconstruction_query(),
        ]:
            assert infer_type(parse_query(text), {"S": FOREST}) in ("tree", FOREST)

    def test_standard_suite_runs_on_random_data(self):
        forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=4)
        for name, text in standard_query_suite().items():
            result = evaluate_query(text, NATURAL, {"S": forest})
            assert result is not None, name

    def test_random_query_is_deterministic_and_valid(self):
        for seed in range(5):
            query = random_query(seed)
            assert query == random_query(seed)
            assert infer_type(query, {"S": FOREST}) in ("tree", FOREST)
