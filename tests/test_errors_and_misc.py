"""Error hierarchy and miscellaneous public-API behaviour."""

from __future__ import annotations

import pytest

import repro
from repro import errors
from repro.kcollections import KSet
from repro.semirings import NATURAL, PROVENANCE
from repro.uxml import TreeBuilder, to_paper_notation


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_single_except_clause_catches_library_failures(self):
        from repro.uxquery import evaluate_query

        with pytest.raises(errors.ReproError):
            evaluate_query("for $x in", NATURAL)
        with pytest.raises(errors.ReproError):
            evaluate_query("($missing)", NATURAL)
        with pytest.raises(errors.ReproError):
            KSet(NATURAL, [("a", -1)])

    def test_specific_errors_are_still_distinguishable(self):
        from repro.uxquery import evaluate_query

        with pytest.raises(errors.UXQuerySyntaxError):
            evaluate_query("element {", NATURAL)
        with pytest.raises(errors.UXQueryTypeError):
            evaluate_query("name(a)", NATURAL)


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackage_names_listed_in_all_exist(self):
        import importlib

        for name in repro.__all__:
            assert importlib.import_module(f"repro.{name}") is not None

    def test_semiring_exports_are_consistent(self):
        import repro.semirings as semirings

        for name in semirings.__all__:
            assert hasattr(semirings, name), name

    def test_uxquery_exports_are_consistent(self):
        import repro.uxquery as uxquery

        for name in uxquery.__all__:
            assert hasattr(uxquery, name), name


class TestDisplayEdgeCases:
    def test_empty_forest_renders(self):
        assert to_paper_notation(KSet.empty(NATURAL)) == "( )"

    def test_nested_annotation_rendering_uses_semiring_repr(self):
        b = TreeBuilder(PROVENANCE)
        tree = b.tree("a", b.leaf("x") @ "t1")
        assert "t1" in to_paper_notation(tree)

    def test_kset_repr_of_trees(self):
        b = TreeBuilder(NATURAL)
        collection = b.forest(b.leaf("a") @ 2)
        assert "UTree" in repr(collection)

    def test_str_of_tree_uses_paper_notation(self):
        b = TreeBuilder(NATURAL)
        assert str(b.tree("a", b.leaf("b"))) == "a[ b ]"
