"""The ``store`` CLI subcommand family."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.semirings import NATURAL
from repro.store import DocumentStore
from repro.uxquery import prepare_query
from repro.uxml import parse_document

DOCUMENT_XML = """
<a annot="2">
  <b annot="3"> <c/> </b>
  <c annot="1"/>
</a>
"""

UPDATE_TREE = '<b annot="4"><c/></b>'


@pytest.fixture
def document_path(tmp_path):
    path = tmp_path / "doc.xml"
    path.write_text(DOCUMENT_XML, encoding="utf-8")
    return str(path)


@pytest.fixture
def store_dir(tmp_path):
    return str(tmp_path / "catalog.store")


def _ingest(store_dir, document_path):
    return main(
        [
            "store", "ingest",
            "--dir", store_dir,
            "--input", document_path,
            "--doc", "doc",
            "--semiring", "natural",
        ]
    )


class TestStoreCli:
    def test_ingest_creates_store(self, store_dir, document_path, capsys):
        assert _ingest(store_dir, document_path) == 0
        output = capsys.readouterr().out
        assert "edge rows" in output
        reopened = DocumentStore.open(store_dir)
        assert reopened.document_ids() == ["doc"]

    def test_ingest_duplicate_fails_without_replace(self, store_dir, document_path, capsys):
        assert _ingest(store_dir, document_path) == 0
        assert _ingest(store_dir, document_path) == 1
        assert "already exists" in capsys.readouterr().err
        assert main(
            [
                "store", "ingest", "--dir", store_dir,
                "--input", document_path, "--doc", "doc", "--replace",
            ]
        ) == 0

    def test_query_matches_single_shot(self, store_dir, document_path, capsys):
        _ingest(store_dir, document_path)
        capsys.readouterr()
        assert main(
            ["store", "query", "--dir", store_dir, "--query", "element out { $S//c }"]
        ) == 0
        output = capsys.readouterr().out.strip()
        document = parse_document(DOCUMENT_XML, NATURAL, "annot")
        prepared = prepare_query("element out { $S//c }", NATURAL, {"S": document})
        assert output == str(prepared.evaluate({"S": document})).strip()

    def test_query_stats_report_pushdown(self, store_dir, document_path, capsys):
        _ingest(store_dir, document_path)
        capsys.readouterr()
        assert main(
            [
                "store", "query", "--dir", store_dir,
                "--query", "$S//c", "--stats",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "pushdown: served 1 (1 index-only)" in output
        assert "plan cache:" in output

    def test_update_and_compact_cycle(self, store_dir, document_path, tmp_path, capsys):
        _ingest(store_dir, document_path)
        updates = tmp_path / "updates.jsonl"
        updates.write_text(
            "\n".join(
                [
                    json.dumps({"op": "insert", "tree": UPDATE_TREE}),
                    "# a comment line",
                    json.dumps({"op": "delete", "tree": UPDATE_TREE, "annot": "4"}),
                ]
            )
            + "\n",
            encoding="utf-8",
        )
        assert main(
            [
                "store", "update", "--dir", store_dir,
                "--doc", "doc", "--updates", str(updates), "--stats",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "applied 2 update(s)" in output
        assert "wal records 3" in output

        assert main(["store", "compact", "--dir", store_dir]) == 0
        assert "snapshot written" in capsys.readouterr().out
        reopened = DocumentStore.open(store_dir)
        # Updates cancelled out: back to the ingested document.
        assert reopened.forest("doc") == parse_document(DOCUMENT_XML, NATURAL, "annot")
        assert reopened.stats().recovered_records == 0  # served by the snapshot

    def test_stats_subcommand(self, store_dir, document_path, capsys):
        _ingest(store_dir, document_path)
        capsys.readouterr()
        assert main(["store", "stats", "--dir", store_dir]) == 0
        output = capsys.readouterr().out
        assert "store: 1 document(s)" in output
        assert "durability:" in output

    def test_query_missing_store_errors(self, store_dir, capsys):
        assert main(["store", "query", "--dir", store_dir, "--query", "$S/*"]) == 1
        assert "no store at" in capsys.readouterr().err

    def test_failed_first_ingest_leaves_no_store(self, store_dir, tmp_path, capsys):
        """A bad input document must not pin a half-created store."""
        bad = tmp_path / "bad.xml"
        bad.write_text("<unclosed", encoding="utf-8")
        assert main(
            ["store", "ingest", "--dir", store_dir, "--input", str(bad), "--doc", "d"]
        ) == 1
        capsys.readouterr()
        from pathlib import Path

        assert not (Path(store_dir) / "meta.json").exists()
        # A corrected retry with a different semiring succeeds cleanly.
        good = tmp_path / "good.xml"
        good.write_text('<p><a annot="2"/></p>', encoding="utf-8")
        assert main(
            [
                "store", "ingest", "--dir", store_dir,
                "--input", str(good), "--doc", "d", "--semiring", "natural",
            ]
        ) == 0
        assert DocumentStore.open(store_dir).semiring == NATURAL

    def test_semiring_pinned(self, store_dir, document_path, capsys):
        _ingest(store_dir, document_path)
        capsys.readouterr()
        # A mismatching --semiring against an existing store is an error,
        # not silently ignored.
        assert main(
            [
                "store", "ingest", "--dir", store_dir,
                "--input", document_path, "--doc", "doc2",
                "--semiring", "boolean",
            ]
        ) == 1
        assert "is over natural" in capsys.readouterr().err
        # Omitting (or matching) the flag works against the pinned semiring.
        assert main(
            [
                "store", "ingest", "--dir", store_dir,
                "--input", document_path, "--doc", "doc2",
            ]
        ) == 0
        reopened = DocumentStore.open(store_dir)
        assert reopened.semiring == NATURAL
        assert sorted(reopened.document_ids()) == ["doc", "doc2"]
