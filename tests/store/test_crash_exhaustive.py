"""Crash-exhaustive durability: simulate a crash at every failpoint, recover.

The harness replays a fixed randomized update stream against a durable
store, simulates a crash (``SimulatedCrash``) at each instrumented
failpoint in turn, reopens the directory, and asserts the recovery
invariant:

    the recovered state equals the state just *before* or just *after*
    the interrupted operation (exactly-once: a journaled record replays
    once, an unjournaled one is lost cleanly) — and after convergence
    plus the rest of the stream, the final state is identical to the
    uninterrupted reference run (documents, annotations, view caches).

By default the full site matrix runs on two representative semirings
(one idempotent-free: N; one symbolic: N[X]) and a representative site
subset runs on every other registry semiring.  Set
``REPRO_CRASH_EXHAUSTIVE=full`` for the full site x semiring product.
"""

from __future__ import annotations

import os

import pytest

from repro.ivm import Delta
from repro.resilience import SimulatedCrash, fail_at
from repro.semirings import NATURAL, PROVENANCE
from repro.semirings.registry import standard_semirings
from repro.store import DocumentStore
from repro.uxml import TreeBuilder
from repro.workloads import random_forest, random_tree

#: Every store-path failpoint (exec.worker.task belongs to the exec tests).
STORE_SITES = (
    "wal.append.write",
    "wal.append.torn",
    "wal.append.fsync",
    "wal.truncate",
    "snapshot.write",
    "snapshot.fsync",
    "snapshot.replace",
    "snapshot.dirfsync",
    "store.ingest.apply",
    "store.update.apply",
    "store.view.apply",
)

#: One site per failure class, run on every registry semiring by default.
REPRESENTATIVE_SITES = ("wal.append.torn", "store.update.apply", "snapshot.replace")

#: Which step of the script each site crashes in (see _script): the sites on
#: the update path crash a post-compaction update, the snapshot/truncate
#: sites crash the compaction itself, the apply sites their own operation.
_COMPACT_STEP = 6
_UPDATE_STEP = 7
SITE_STEP = {
    "wal.append.write": _UPDATE_STEP,
    "wal.append.torn": _UPDATE_STEP,
    "wal.append.fsync": _UPDATE_STEP,
    "store.update.apply": _UPDATE_STEP,
    "wal.truncate": _COMPACT_STEP,
    "snapshot.write": _COMPACT_STEP,
    "snapshot.fsync": _COMPACT_STEP,
    "snapshot.replace": _COMPACT_STEP,
    "snapshot.dirfsync": _COMPACT_STEP,
    "store.ingest.apply": 1,
    "store.view.apply": 2,
}


def _matrix():
    full = os.environ.get("REPRO_CRASH_EXHAUSTIVE", "").lower() in ("full", "all", "1")
    cases = []
    for semiring in standard_semirings():
        exhaustive = full or semiring in (NATURAL, PROVENANCE)
        for site in STORE_SITES if exhaustive else REPRESENTATIVE_SITES:
            cases.append(pytest.param(site, semiring, id=f"{site}-{semiring.name}"))
    return cases


def _script(semiring):
    """The deterministic update stream: ingests, a view, updates, a compact."""
    doc_a = random_forest(semiring, num_trees=3, depth=2, fanout=2, seed=11)
    doc_b = random_forest(semiring, num_trees=2, depth=2, fanout=2, seed=23)
    samples = [v for v in semiring.sample_elements() if not semiring.is_zero(v)]
    deltas = [
        Delta.insertion(
            semiring,
            random_tree(semiring, depth=2, fanout=2, seed=100 + index),
            samples[index % len(samples)],
        )
        for index in range(6)
    ]
    return [
        ("ingest", "a", doc_a),
        ("ingest", "b", doc_b),
        ("view", "v", "($S)/*", "a"),
        ("update", "a", deltas[0]),
        ("update", "a", deltas[1]),
        ("update", "a", deltas[2]),
        ("compact",),
        ("update", "a", deltas[3]),
        ("update", "a", deltas[4]),
        ("update", "a", deltas[5]),
    ]


def _execute(store, step):
    kind = step[0]
    if kind == "ingest":
        store.ingest(step[1], step[2])
    elif kind == "view":
        store.register_view(step[1], step[2], step[3])
    elif kind == "update":
        store.update(step[1], step[2])
    elif kind == "compact":
        if store.durable:
            store.compact()
    else:  # pragma: no cover - script typo guard
        raise AssertionError(f"unknown step {step!r}")


def _run_model(semiring, steps, upto=None):
    """The uninterrupted logical state: an in-memory store over the stream."""
    store = DocumentStore(semiring)
    for step in steps[:upto]:
        _execute(store, step)
    return store


def _signature(store):
    """Everything the recovery invariant compares: forests and view caches."""
    return (
        {doc_id: store.forest(doc_id) for doc_id in store.document_ids()},
        tuple(store.view_names()),
        {name: store.view(name).result for name in store.view_names()},
    )


class TestCrashExhaustive:
    @pytest.mark.parametrize(("site", "semiring"), _matrix())
    def test_crash_recover_converge(self, site, semiring, tmp_path):
        steps = _script(semiring)
        crash_step = SITE_STEP[site]
        before = _signature(_run_model(semiring, steps, upto=crash_step))
        after = _signature(_run_model(semiring, steps, upto=crash_step + 1))
        reference = _signature(_run_model(semiring, steps))

        directory = tmp_path / "store"
        store = DocumentStore(semiring, directory=directory)
        for step in steps[:crash_step]:
            _execute(store, step)
        with fail_at(site, action="crash"):
            with pytest.raises(SimulatedCrash):
                _execute(store, steps[crash_step])
        del store  # the process "died"; only the directory survives

        recovered = DocumentStore.open(directory)
        state = _signature(recovered)
        assert state in (before, after), (
            f"state recovered after a crash at {site!r} matches neither the "
            "before- nor the after-operation reference"
        )
        if state == before:
            # The interrupted operation left no durable trace: redo it.
            _execute(recovered, steps[crash_step])
        for step in steps[crash_step + 1 :]:
            _execute(recovered, step)
        assert _signature(recovered) == reference
        # One more recovery round trip: the converged on-disk state is stable.
        assert _signature(DocumentStore.open(directory)) == reference

    def test_every_instrumented_store_site_is_in_the_matrix(self):
        from repro.resilience import SITE_CATALOG

        # corrupt.* sites belong to the corruption-exhaustive suite
        # (test_corruption_exhaustive.py), not the crash matrix: their action
        # damages bytes and continues, so there is no crash to recover from.
        store_sites = {
            site
            for site in SITE_CATALOG
            if not site.startswith(("exec.", "corrupt."))
        }
        assert store_sites == set(STORE_SITES)
        assert set(SITE_STEP) == set(STORE_SITES)


class TestMidApplyInterruption:
    """Satellite: a WAL-journaled update interrupted before the in-memory
    apply must replay on reopen — exactly once (checked in N, where a double
    replay would inflate the multiplicity)."""

    def test_update_journaled_but_unapplied_replays_exactly_once(self, tmp_path):
        t = TreeBuilder(NATURAL)
        member = t.leaf("m")
        store = DocumentStore(NATURAL, directory=tmp_path / "s")
        store.ingest("d", t.forest(member))
        with fail_at("store.update.apply", action="crash"):
            with pytest.raises(SimulatedCrash):
                store.update("d", Delta.insertion(NATURAL, member, 1))
        # The crashed store never applied the delta in memory.
        assert store.forest("d").annotation(member) == 1
        del store
        reopened = DocumentStore.open(tmp_path / "s")
        # 1 (ingest) + 1 (one replay of the journaled delta) — not 3.
        assert reopened.forest("d").annotation(member) == 2
        # A second recovery replays from the same log and agrees.
        assert DocumentStore.open(tmp_path / "s").forest("d").annotation(member) == 2

    def test_interrupted_ingest_replays_exactly_once(self, tmp_path):
        t = TreeBuilder(NATURAL)
        store = DocumentStore(NATURAL, directory=tmp_path / "s")
        with fail_at("store.ingest.apply", action="crash"):
            with pytest.raises(SimulatedCrash):
                store.ingest("d", t.forest(t.leaf("m")))
        del store
        reopened = DocumentStore.open(tmp_path / "s")
        assert reopened.document_ids() == ["d"]
        assert reopened.forest("d").annotation(t.leaf("m")) == 1
