"""Corruption-exhaustive integrity: damage every region class, never be wrong.

The harness replays a fixed update stream against a durable store, then
damages one durable artifact region — every WAL record line and the
snapshot file, in every corruption mode (``flip``/``garbage``/``truncate``)
— and asserts the integrity invariant:

    reopening the directory either *recovers a state equal to some prefix
    of the operation history* (a torn/truncated tail is crash residue and
    recovers silently) or *raises a typed* :class:`IntegrityError` *naming
    the damaged artifact* — never a silently wrong answer; and
    ``fsck(repair=True)`` always converges: the repaired directory reopens
    to exactly the maximal salvageable prefix, a second fsck is clean, and
    everything cut away survives in a ``.quarantine`` sidecar.

Damage confined to WAL line *k* always salvages exactly records ``1..k-1``:
a byte flip invalidates line *k*'s CRC (or merges it with its neighbour), a
garbage splice lands an unparseable line at position *k*, and a truncation
cuts inside line *k* (leaving at most crash-indistinguishable torn bytes).
Snapshot damage orphans the whole post-compaction WAL tail — its updates
reference documents only the snapshot defined — so the maximal prefix is
empty: honest, reported loss instead of silent fabrication.

By default the full region x mode matrix runs on two representative
semirings (N and N[X]) and a representative subset on every other registry
semiring; set ``REPRO_CORRUPTION_EXHAUSTIVE=full`` for the full product.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.errors import IntegrityError
from repro.ivm import Delta
from repro.resilience import corrupt_file, fail_at
from repro.semirings import NATURAL, PROVENANCE
from repro.semirings.registry import standard_semirings
from repro.store import DocumentStore, fsck_store
from repro.uxml import TreeBuilder
from repro.workloads import random_forest, random_tree

CORRUPT_MODES = ("flip", "garbage", "truncate")

#: (scenario, target, mode): scenario ``wal`` damages WAL line *target* of a
#: snapshot-less store (9 records); ``walsnap`` damages post-compaction WAL
#: line *target* (of 3) next to a live snapshot; ``snapshot`` damages the
#: snapshot file itself.
_WAL_LINES = 9
_WALSNAP_LINES = 3

#: One case per damage class, run on every registry semiring by default.
REPRESENTATIVE_CASES = (
    ("wal", 4, "flip"),
    ("walsnap", 2, "garbage"),
    ("snapshot", 0, "truncate"),
)


def _all_cases():
    for line in range(1, _WAL_LINES + 1):
        for mode in CORRUPT_MODES:
            yield ("wal", line, mode)
    for line in range(1, _WALSNAP_LINES + 1):
        for mode in CORRUPT_MODES:
            yield ("walsnap", line, mode)
    for mode in CORRUPT_MODES:
        yield ("snapshot", 0, mode)


def _matrix():
    full = os.environ.get("REPRO_CORRUPTION_EXHAUSTIVE", "").lower() in (
        "full",
        "all",
        "1",
    )
    cases = []
    for semiring in standard_semirings():
        exhaustive = full or semiring in (NATURAL, PROVENANCE)
        for scenario, target, mode in (
            _all_cases() if exhaustive else REPRESENTATIVE_CASES
        ):
            cases.append(
                pytest.param(
                    scenario,
                    target,
                    mode,
                    semiring,
                    id=f"{scenario}-{target}-{mode}-{semiring.name}",
                )
            )
    return cases


def _steps(semiring, compact):
    """The deterministic stream (the crash-exhaustive script, compact optional)."""
    doc_a = random_forest(semiring, num_trees=3, depth=2, fanout=2, seed=11)
    doc_b = random_forest(semiring, num_trees=2, depth=2, fanout=2, seed=23)
    samples = [v for v in semiring.sample_elements() if not semiring.is_zero(v)]
    deltas = [
        Delta.insertion(
            semiring,
            random_tree(semiring, depth=2, fanout=2, seed=100 + index),
            samples[index % len(samples)],
        )
        for index in range(6)
    ]
    steps = [
        ("ingest", "a", doc_a),
        ("ingest", "b", doc_b),
        ("view", "v", "($S)/*", "a"),
        ("update", "a", deltas[0]),
        ("update", "a", deltas[1]),
        ("update", "a", deltas[2]),
    ]
    if compact:
        steps.append(("compact",))
    steps.extend(
        [
            ("update", "a", deltas[3]),
            ("update", "a", deltas[4]),
            ("update", "a", deltas[5]),
        ]
    )
    return steps


def _execute(store, step):
    kind = step[0]
    if kind == "ingest":
        store.ingest(step[1], step[2])
    elif kind == "view":
        store.register_view(step[1], step[2], step[3])
    elif kind == "update":
        store.update(step[1], step[2])
    elif kind == "compact":
        if store.durable:
            store.compact()
    else:  # pragma: no cover - script typo guard
        raise AssertionError(f"unknown step {step!r}")


def _model_signature(semiring, steps, upto):
    store = DocumentStore(semiring)
    for step in steps[:upto]:
        _execute(store, step)
    return _signature(store)


def _signature(store):
    return (
        {doc_id: store.forest(doc_id) for doc_id in store.document_ids()},
        tuple(store.view_names()),
        {name: store.view(name).result for name in store.view_names()},
    )


def _line_region(path: Path, line: int):
    """Byte region [start, end) of 1-based ``line``, newline included."""
    data = path.read_bytes()
    start = 0
    for _ in range(line - 1):
        start = data.index(b"\n", start) + 1
    end = data.index(b"\n", start) + 1
    return start, end


class TestCorruptionExhaustive:
    @pytest.mark.parametrize(("scenario", "target", "mode", "semiring"), _matrix())
    def test_damage_detect_salvage_converge(
        self, scenario, target, mode, semiring, tmp_path
    ):
        compact = scenario in ("walsnap", "snapshot")
        steps = _steps(semiring, compact=compact)
        directory = tmp_path / "store"
        store = DocumentStore(semiring, directory=directory)
        for step in steps:
            _execute(store, step)
        del store  # only the directory survives

        # The maximal salvageable prefix once line/artifact `target` is hit:
        # wal      -> records 1..target-1  == steps[:target-1]
        # walsnap  -> snapshot (6 steps + compact) + target-1 replayed updates
        # snapshot -> nothing: the WAL tail references snapshot-only documents
        if scenario == "wal":
            expected = _model_signature(semiring, steps, upto=target - 1)
        elif scenario == "walsnap":
            expected = _model_signature(semiring, steps, upto=7 + (target - 1))
        else:
            expected = _model_signature(semiring, steps, upto=0)

        wal_path = directory / "wal.jsonl"
        snapshot_path = directory / "snapshot.json"
        seed = 1000 + 37 * target + len(mode)
        if scenario == "snapshot":
            damaged = snapshot_path
            corrupt_file(snapshot_path, mode, seed=seed)
        else:
            damaged = wal_path
            start, end = _line_region(wal_path, target)
            corrupt_file(wal_path, mode, seed=seed, start=start, end=end)

        # -- detect (read-only): fsck must not mutate anything ------------
        before = {p.name: p.read_bytes() for p in directory.iterdir()}
        detect = fsck_store(directory)
        assert {p.name: p.read_bytes() for p in directory.iterdir()} == before

        # -- the invariant: prefix state or a typed refusal, never wrong --
        try:
            recovered = _signature(DocumentStore.open(directory))
        except IntegrityError as error:
            assert error.artifact == str(damaged)
            # Whatever refuses the open must also be visible to the scrub.
            assert not detect.ok
        else:
            # Silent recovery is legal only for crash-indistinguishable
            # damage (a truncation / a flipped final newline) and must land
            # exactly on the expected prefix.
            assert recovered == expected

        # -- repair converges on the maximal salvageable prefix -----------
        report = fsck_store(directory, repair=True, deep=True)
        assert report.ok, report.render()
        assert _signature(DocumentStore.open(directory)) == expected
        if report.repairs:
            sidecars = list(directory.glob("*.quarantine"))
            assert sidecars, "repair must quarantine, never delete"
        if scenario == "wal" and mode == "garbage":
            # The spliced suffix still parses: the report names exactly the
            # acknowledged lsns that were lost.
            assert report.lost_lsns == list(range(target, _WAL_LINES + 1))

        # -- and is stable: a second scrub finds nothing to do -------------
        second = fsck_store(directory, deep=True)
        assert second.ok, second.render()
        assert not second.repairs

    def test_every_corrupt_site_is_in_the_matrix(self):
        from repro.resilience import SITE_CATALOG

        corrupt_sites = {s for s in SITE_CATALOG if s.startswith("corrupt.")}
        # wal/walsnap cases exercise corrupt.wal.record's region class, the
        # snapshot cases corrupt.snapshot.file's (placed offline through the
        # same corrupt_file primitive the live failpoint calls).
        assert corrupt_sites == {"corrupt.wal.record", "corrupt.snapshot.file"}


class TestLiveCorruptionFailpoints:
    """The same damage placed *online* through the armed failpoints."""

    def test_wal_record_corruption_detected_on_reopen(self, tmp_path):
        t = TreeBuilder(NATURAL)
        member = t.leaf("m")
        store = DocumentStore(NATURAL, directory=tmp_path / "s")
        store.ingest("d", t.forest(member))
        with fail_at(
            "corrupt.wal.record", action="corrupt", mode="garbage", seed=7
        ) as point:
            store.update("d", Delta.insertion(NATURAL, member, 1))
        assert point.fired == 1
        # The damage is silent: the in-memory store is ahead of its journal.
        assert store.forest("d").annotation(member) == 2
        del store
        with pytest.raises(IntegrityError) as err:
            DocumentStore.open(tmp_path / "s")
        assert err.value.artifact == str(tmp_path / "s" / "wal.jsonl")
        report = fsck_store(tmp_path / "s", repair=True)
        assert report.ok
        assert report.lost_lsns == [2]
        assert (tmp_path / "s" / "wal.jsonl.quarantine").exists()
        reopened = DocumentStore.open(tmp_path / "s")
        assert reopened.forest("d").annotation(member) == 1

    def test_snapshot_corruption_detected_on_reopen(self, tmp_path):
        t = TreeBuilder(NATURAL)
        member = t.leaf("m")
        store = DocumentStore(NATURAL, directory=tmp_path / "s")
        store.ingest("d", t.forest(member))
        with fail_at(
            "corrupt.snapshot.file", action="corrupt", mode="flip", seed=9
        ) as point:
            store.compact()
        assert point.fired == 1
        del store
        with pytest.raises(IntegrityError) as err:
            DocumentStore.open(tmp_path / "s")
        assert err.value.artifact == str(tmp_path / "s" / "snapshot.json")
        report = fsck_store(tmp_path / "s", repair=True)
        assert report.ok
        assert (tmp_path / "s" / "snapshot.json.quarantine").exists()
        # The WAL was truncated by the compaction, so nothing replays: the
        # document is honestly lost (quarantined), not silently wrong.
        assert DocumentStore.open(tmp_path / "s").document_ids() == []
