"""WAL and snapshot machinery: lsns, torn tails, atomic images, codecs."""

from __future__ import annotations

import json

import pytest

from repro.errors import StoreError
from repro.ivm import Delta
from repro.semirings import NATURAL, PROVENANCE, Polynomial
from repro.semirings.registry import standard_semirings
from repro.store import (
    ShreddedColumns,
    WriteAheadLog,
    delta_to_payload,
    load_snapshot,
    payload_to_delta,
    semiring_registry_name,
    write_snapshot,
)
from repro.semirings.diff import DiffPair
from repro.workloads import random_forest, random_tree


class TestWriteAheadLog:
    def test_append_assigns_monotone_lsns(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        assert wal.append({"op": "a"}) == 1
        assert wal.append({"op": "b"}) == 2
        assert wal.last_lsn == 2
        assert [record["op"] for _, record in wal.records()] == ["a", "b"]

    def test_reload_continues_lsns(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        WriteAheadLog(path).append({"op": "a"})
        wal = WriteAheadLog(path)
        assert wal.append({"op": "b"}) == 2
        assert len(wal) == 2

    def test_records_after_lsn(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        for op in ("a", "b", "c"):
            wal.append({"op": op})
        assert [record["op"] for _, record in wal.records(after_lsn=1)] == ["b", "c"]

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"op": "a"})
        wal.append({"op": "b"})
        # Simulate a crash mid-append: a partial record with no newline.
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "c", "lsn"')
        reopened = WriteAheadLog(path)
        assert [record["op"] for _, record in reopened.records()] == ["a", "b"]
        assert reopened.torn_bytes > 0
        # The next append continues cleanly after the torn bytes.
        assert reopened.append({"op": "d"}) == 3

    def test_append_after_torn_tail_recovery_is_durable(self, tmp_path):
        """The torn tail is physically truncated, so post-recovery appends
        land after the last complete record instead of corrupting the file."""
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"op": "a"})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "b", "ls')  # crash mid-append
        recovered = WriteAheadLog(path)
        recovered.append({"op": "c"})
        recovered.append({"op": "d"})
        # Every acknowledged record survives the next recovery.
        final = WriteAheadLog(path)
        assert [record["op"] for _, record in final.records()] == ["a", "c", "d"]
        assert final.torn_bytes == 0

    def test_corrupt_middle_record_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('not json\n{"lsn": 2, "op": "b"}\n', encoding="utf-8")
        with pytest.raises(StoreError, match="corrupt WAL record"):
            WriteAheadLog(path)

    def test_non_object_json_line_is_corrupt_not_a_crash(self, tmp_path):
        """Valid JSON that is not an object follows the corrupt-record path."""
        path = tmp_path / "wal.jsonl"
        path.write_text('42\n{"lsn": 2, "op": "b"}\n', encoding="utf-8")
        with pytest.raises(StoreError, match="corrupt WAL record"):
            WriteAheadLog(path)

    def test_corrupt_complete_final_line_refuses_to_load(self, tmp_path):
        """A newline-terminated line can never be torn (appends write the
        newline last), so bit-rot in an acknowledged final record must raise
        rather than be silently truncated away."""
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"op": "a"})
        wal.append({"op": "b"})
        data = bytearray(path.read_bytes())
        data[-5] ^= 0xFF  # flip a byte inside the committed final record
        path.write_bytes(bytes(data))
        with pytest.raises(StoreError, match="corrupt WAL record"):
            WriteAheadLog(path)
        assert b'"op": "a"' in path.read_bytes()  # nothing was truncated

    def test_truncate_keeps_counter(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append({"op": "a"})
        wal.truncate()
        assert len(wal) == 0
        assert wal.append({"op": "b"}) == 2  # lsns never repeat


class TestDeltaCodec:
    def test_round_trip_every_registry_semiring(self):
        for semiring in standard_semirings():
            tree = random_tree(semiring, depth=2, fanout=2, seed=3)
            samples = [v for v in semiring.sample_elements() if not semiring.is_zero(v)]
            annotation = samples[-1]
            delta = Delta(
                semiring,
                [(tree, DiffPair(annotation, semiring.normalize(semiring.zero)))],
            )
            payload = delta_to_payload(delta)
            rebuilt = payload_to_delta(payload, semiring)
            assert list(rebuilt.items()) == list(delta.items()), semiring.name

    def test_payload_is_json_and_human_annotated(self):
        tree = random_tree(PROVENANCE, depth=2, fanout=1, seed=1)
        delta = Delta.insertion(PROVENANCE, tree, Polynomial.variable("x"))
        payload = delta_to_payload(delta)
        text = json.dumps(payload)  # must be JSON-serializable
        assert "pos_repr" in text
        change = payload["changes"][0]
        assert change["label"] == tree.label
        assert change["pos_repr"] == "x"

    def test_malformed_payload_raises(self):
        with pytest.raises(StoreError, match="malformed delta payload"):
            payload_to_delta({"nope": []}, NATURAL)


class TestSnapshot:
    def test_round_trip(self, tmp_path):
        forest = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=4)
        columns = ShreddedColumns.from_forest(forest)
        path = tmp_path / "snapshot.json"
        views = [{"op": "view", "name": "v", "doc": "d", "query": "$S//c", "var": "S"}]
        write_snapshot(
            path,
            semiring_name="natural",
            wal_lsn=7,
            documents={"d": columns},
            views=views,
        )
        loaded = load_snapshot(path)
        assert loaded is not None
        assert loaded["wal_lsn"] == 7
        assert loaded["semiring"] == NATURAL
        assert loaded["documents"]["d"] == columns
        assert loaded["views"] == views

    def test_missing_snapshot_is_none(self, tmp_path):
        assert load_snapshot(tmp_path / "absent.json") is None

    def test_unsupported_format_raises(self, tmp_path):
        path = tmp_path / "snapshot.json"
        path.write_text('{"format": 99}', encoding="utf-8")
        with pytest.raises(StoreError, match="unsupported format"):
            load_snapshot(path)

    def test_registry_name_resolution(self):
        for semiring in standard_semirings():
            name = semiring_registry_name(semiring)
            assert name is not None, semiring.name

        from repro.semirings import ProductSemiring
        from repro.semirings.boolean import BOOLEAN

        # A semiring no registered factory reproduces has no durable name.
        assert semiring_registry_name(ProductSemiring(BOOLEAN, NATURAL)) is None

    def test_name_equal_but_structurally_different_semiring_not_persistable(self):
        """A parameterized lattice with a non-default universe shares the
        registry name but is a different semiring; persisting it under that
        name would silently reopen with the wrong universe."""
        from repro.semirings import DivisorLatticeSemiring, SubsetLatticeSemiring

        assert semiring_registry_name(SubsetLatticeSemiring({"alice", "bob"})) is None
        assert semiring_registry_name(DivisorLatticeSemiring(6)) is None
        # The registry instances themselves still resolve.
        assert semiring_registry_name(SubsetLatticeSemiring({"r1", "r2", "r3"})) is not None
        assert semiring_registry_name(DivisorLatticeSemiring(30)) is not None
