"""Navigation pushdown: recognition, exactness, and the fallback gate."""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.exec.plan_cache import PlanCache
from repro.paperdata import figure1_query, figure1_source, figure4_query, figure4_source
from repro.semirings import NATURAL, PROVENANCE
from repro.store import NAV_VAR, PushdownExecutor, ShreddedColumns, StructuralIndex, split_navigation
from repro.uxquery import prepare_query
from repro.uxquery.parser import parse_query
from repro.uxquery.normalize import normalize
from repro.workloads import random_forest, standard_query_suite


def _split_text(query: str, var: str = "S", env_types=None):
    types = dict(env_types or {})
    types.setdefault(var, "forest")
    core = normalize(parse_query(query), types)
    return split_navigation(core, var)


class TestRecognition:
    def test_whole_document(self):
        split = _split_text("$S")
        assert split is not None and split.steps == () and split.trivial

    def test_single_chain(self):
        split = _split_text("$S/a//c")
        assert split is not None
        assert [str(step) for step in split.steps] == [
            "child::a",
            "descendant-or-self::*",
            "child::c",
        ]
        assert split.trivial

    def test_wrapped_chain_has_residual(self):
        split = _split_text("element out { $S//c }")
        assert split is not None and not split.trivial
        assert str(split.residual) == f"element out {{${NAV_VAR}}}"

    def test_chain_under_binder(self):
        split = _split_text("for $x in $S/a return element hit { ($x)/* }")
        assert split is not None
        assert [str(step) for step in split.steps] == ["child::a"]

    def test_mixed_chains_decline(self):
        assert _split_text("($S/a, $S//b)") is None

    def test_bare_var_plus_chain_decline(self):
        # `$S` (empty chain) and `$S/a` are different chains.
        assert _split_text("for $x in $S return $S/a") is None

    def test_rebound_document_variable(self):
        # The inner `$S` is bound by the for, not free: only the source chain
        # is pushed down, and the bound occurrences stay untouched.
        split = _split_text("for $S in $S/a return ($S)/*")
        assert split is not None
        assert [str(step) for step in split.steps] == ["child::a"]
        assert f"${NAV_VAR}" in str(split.residual)
        assert str(split.residual).count(NAV_VAR) == 1

    def test_var_absent_declines(self):
        assert _split_text("element out { () }") is None

    def test_reserved_variable_collision_declines(self):
        from repro.uxquery.ast import ElementExpr, LabelExpr, PathExpr, Step, VarExpr

        core = ElementExpr(
            LabelExpr("out"),
            PathExpr(VarExpr(NAV_VAR), (Step("child", "a"),)),
        )
        assert split_navigation(core, NAV_VAR) is None

    def test_paper_figures_recognized(self):
        assert _split_text(figure1_query()) is not None
        assert _split_text(figure4_query(), var="T") is not None


class TestExecutorExactness:
    @pytest.fixture
    def executor(self):
        return PushdownExecutor(PlanCache(maxsize=64))

    def test_standard_suite_every_registry_semiring(self, any_semiring, executor):
        forest = random_forest(any_semiring, num_trees=3, depth=3, fanout=2, seed=8)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        for name, query in standard_query_suite().items():
            prepared = prepare_query(query, any_semiring, {"S": forest})
            expected = prepared.evaluate({"S": forest})
            assert executor.execute(prepared, index, "S") == expected, name
        assert executor.fallbacks == 0

    def test_fallback_is_exact_and_counted(self, executor):
        forest = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=9)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        query = "element out { ($S/a, $S//b) }"
        prepared = prepare_query(query, NATURAL, {"S": forest})
        expected = prepared.evaluate({"S": forest})
        assert executor.execute(prepared, index, "S") == expected
        assert executor.fallbacks == 1 and executor.pushdowns == 0

    def test_full_pushdown_counted(self, executor):
        forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=10)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        prepared = prepare_query("$S//c", NATURAL, {"S": forest})
        assert executor.execute(prepared, index, "S") == prepared.evaluate({"S": forest})
        assert executor.pushdowns == 1 and executor.full_pushdowns == 1

    def test_extra_environment_bindings(self, executor):
        forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=12)
        other = random_forest(NATURAL, num_trees=1, depth=2, fanout=2, seed=13)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        query = "element out { ($S//c, $R/*) }"
        prepared = prepare_query(query, NATURAL, {"S": forest, "R": other})
        expected = prepared.evaluate({"S": forest, "R": other})
        assert executor.execute(prepared, index, "S", {"R": other}) == expected

    def test_reserved_env_binding_rejected(self, executor):
        forest = random_forest(NATURAL, num_trees=1, depth=2, fanout=1, seed=0)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        prepared = prepare_query("$S/*", NATURAL, {"S": forest})
        with pytest.raises(StoreError, match="reserved"):
            executor.execute(prepared, index, "S", {NAV_VAR: forest})

    def test_semiring_mismatch_rejected(self, executor):
        forest = random_forest(NATURAL, num_trees=1, depth=2, fanout=1, seed=0)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        prov_forest = random_forest(PROVENANCE, num_trees=1, depth=2, fanout=1, seed=0)
        prepared = prepare_query("$S/*", PROVENANCE, {"S": prov_forest})
        with pytest.raises(StoreError, match="cannot run against"):
            executor.execute(prepared, index, "S")

    def test_paper_figures(self, executor):
        fig1 = figure1_source()
        index1 = StructuralIndex(ShreddedColumns.from_forest(fig1))
        prepared1 = prepare_query(figure1_query(), PROVENANCE, {"S": fig1})
        assert executor.execute(prepared1, index1, "S") == prepared1.evaluate({"S": fig1})

        fig4 = figure4_source()
        index4 = StructuralIndex(ShreddedColumns.from_forest(fig4))
        prepared4 = prepare_query(figure4_query(), PROVENANCE, {"T": fig4})
        assert executor.execute(prepared4, index4, "T") == prepared4.evaluate({"T": fig4})
        assert executor.fallbacks == 0

    def test_split_analysis_is_memoized(self, executor):
        forest = random_forest(NATURAL, num_trees=1, depth=2, fanout=2, seed=3)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        prepared = prepare_query("$S//c", NATURAL, {"S": forest})
        first = executor.split_for(prepared, "S")
        assert executor.split_for(prepared, "S") is first

    def test_split_memo_respects_variable_type(self, executor):
        """Equal cores with differently-typed document variables must not
        share a split: the FOREST gate depends on the declared type."""
        forest_typed = prepare_query("($S)/*", NATURAL, env_types={"S": "forest"})
        tree_typed = prepare_query("($S)/*", NATURAL, env_types={"S": "tree"})
        assert forest_typed.core == tree_typed.core
        assert executor.split_for(forest_typed, "S") is not None
        assert executor.split_for(tree_typed, "S") is None
