"""Storage integrity: checksummed records and snapshots, typed refusals.

Satellite regressions around the corruption-exhaustive invariant: the v1
WAL record format and its v0 compatibility path, torn-tail vs
checksum-mismatch disambiguation on both sides of a compaction boundary,
the format-2 snapshot envelope, the durability knob, and the observability
wiring (events, counters, the ``/readyz`` integrity probe).
"""

from __future__ import annotations

import json

import pytest

from repro.errors import IntegrityError, StoreError
from repro.ivm import Delta
from repro.obs.events import EVENT_CATALOG, recent_events, recording
from repro.semirings import NATURAL
from repro.store import (
    DocumentStore,
    WriteAheadLog,
    fsck_store,
    load_snapshot,
    write_snapshot,
)
from repro.store.columns import ShreddedColumns
from repro.store.integrity import INTEGRITY_ERRORS, crc32_text, record_crc
from repro.store.wal import WAL_RECORD_FORMAT
from repro.uxml import TreeBuilder


def _tree():
    return TreeBuilder(NATURAL)


def _build_store(directory, *, compact=False):
    """A small durable store: ingest + update (+ optional compact + update)."""
    t = _tree()
    member = t.leaf("m")
    store = DocumentStore(NATURAL, directory=directory)
    store.ingest("d", t.forest(member))
    store.update("d", Delta.insertion(NATURAL, member, 1))
    if compact:
        store.compact()
        store.update("d", Delta.insertion(NATURAL, member, 1))
    return store, member


class TestWalRecordFormat:
    def test_appended_records_carry_version_and_crc(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"op": "a"})
        line = path.read_text(encoding="utf-8").splitlines()[0]
        record = json.loads(line)
        assert record["v"] == WAL_RECORD_FORMAT
        assert record["crc"] == record_crc(record)

    def test_crc_is_position_independent(self, tmp_path):
        """The verifier re-serializes record-minus-crc, so reordering the
        JSON keys of a line must not invalidate it."""
        path = tmp_path / "wal.jsonl"
        WriteAheadLog(path).append({"op": "a"})
        record = json.loads(path.read_text(encoding="utf-8"))
        shuffled = {key: record[key] for key in reversed(list(record))}
        path.write_text(json.dumps(shuffled) + "\n", encoding="utf-8")
        assert [r["op"] for _, r in WriteAheadLog(path).records()] == ["a"]

    def test_in_memory_records_are_clean(self, tmp_path):
        """crc/v are a wire detail: neither fresh appends nor reloads leak
        them into the records handed to replay."""
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"op": "a"})
        assert all(
            "crc" not in r and "v" not in r for _, r in wal.records()
        )
        assert all(
            "crc" not in r and "v" not in r
            for _, r in WriteAheadLog(path).records()
        )

    def test_bad_crc_raises_typed_integrity_error(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        WriteAheadLog(path).append({"op": "a"})
        record = json.loads(path.read_text(encoding="utf-8"))
        record["crc"] = (record["crc"] + 1) % (1 << 32)
        path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        with pytest.raises(IntegrityError) as err:
            WriteAheadLog(path)
        assert err.value.artifact == str(path)
        # IntegrityError is a StoreError: pre-existing handlers still match.
        assert isinstance(err.value, StoreError)

    def test_parseable_bit_flip_is_caught_by_crc(self, tmp_path):
        """The motivating case: a flip that still parses as JSON (a changed
        count) must be refused, not served as a correct answer."""
        path = tmp_path / "wal.jsonl"
        WriteAheadLog(path).append({"op": "a", "count": 5})
        record = json.loads(path.read_text(encoding="utf-8"))
        record["count"] = 6  # still perfectly valid JSON
        path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        with pytest.raises(IntegrityError, match="CRC32 mismatch"):
            WriteAheadLog(path)

    def test_spliced_duplicate_lsn_refuses(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"op": "a"})
        line = path.read_text(encoding="utf-8")
        path.write_text(line + line, encoding="utf-8")  # replayed-twice splice
        with pytest.raises(IntegrityError, match="not greater than"):
            WriteAheadLog(path)

    def test_checksum_false_writes_v0_records(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        WriteAheadLog(path, checksum=False).append({"op": "a"})
        record = json.loads(path.read_text(encoding="utf-8"))
        assert "crc" not in record and "v" not in record

    def test_v0_records_replay_and_are_counted(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path, checksum=False)
        wal.append({"op": "a"})
        wal.append({"op": "b"})
        reopened = WriteAheadLog(path)
        assert [r["op"] for _, r in reopened.records()] == ["a", "b"]
        assert reopened.v0_records == 2

    def test_store_stats_surface_v0_downgrade(self, tmp_path):
        store, _ = _build_store(tmp_path / "s")
        del store
        wal_path = tmp_path / "s" / "wal.jsonl"
        lines = []
        for line in wal_path.read_text(encoding="utf-8").splitlines():
            record = json.loads(line)
            record.pop("crc", None)
            record.pop("v", None)
            lines.append(json.dumps(record, sort_keys=True))
        wal_path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        reopened = DocumentStore.open(tmp_path / "s")
        assert reopened.stats().wal_v0_records == 2
        # fsck flags the downgrade without failing the store.
        report = fsck_store(tmp_path / "s")
        assert report.ok
        assert any("pre-checksum" in f.detail for f in report.findings)


class TestTornVsCorrupt:
    """A torn tail is crash residue (recover silently); a damaged *complete*
    line is corruption (refuse, typed) — on either side of a compaction."""

    @pytest.mark.parametrize("compact", [False, True], ids=["pre", "post"])
    def test_torn_tail_recovers_silently(self, tmp_path, compact):
        store, member = _build_store(tmp_path / "s", compact=compact)
        expected = store.forest("d").annotation(member)
        del store
        wal_path = tmp_path / "s" / "wal.jsonl"
        with open(wal_path, "a", encoding="utf-8") as handle:
            handle.write('{"op": "update", "lsn"')  # crash mid-append
        reopened = DocumentStore.open(tmp_path / "s")
        assert reopened.forest("d").annotation(member) == expected

    @pytest.mark.parametrize("compact", [False, True], ids=["pre", "post"])
    def test_flipped_complete_record_refuses(self, tmp_path, compact):
        store, _ = _build_store(tmp_path / "s", compact=compact)
        del store
        wal_path = tmp_path / "s" / "wal.jsonl"
        data = bytearray(wal_path.read_bytes())
        data[-5] ^= 0xFF  # inside the newline-terminated final record
        wal_path.write_bytes(bytes(data))
        with pytest.raises(IntegrityError) as err:
            DocumentStore.open(tmp_path / "s")
        assert err.value.artifact == str(wal_path)


class TestSnapshotEnvelope:
    def _write(self, tmp_path):
        t = _tree()
        columns = ShreddedColumns.from_forest(t.forest(t.leaf("m")))
        path = tmp_path / "snapshot.json"
        write_snapshot(
            path,
            semiring_name="natural",
            wal_lsn=4,
            documents={"d": columns},
            views=[],
        )
        return path, columns

    def test_format2_round_trip_verifies(self, tmp_path):
        path, columns = self._write(tmp_path)
        header = json.loads(path.read_text(encoding="utf-8").splitlines()[0])
        assert header["algo"] == "crc32"
        loaded = load_snapshot(path)
        assert loaded["format"] == 2
        assert loaded["verified"] is True
        assert loaded["documents"]["d"] == columns
        assert set(loaded["column_digests"]["d"]) == {
            "pid",
            "nid",
            "label",
            "annot",
        }

    def test_flipped_byte_raises_naming_the_file(self, tmp_path):
        path, _ = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0x40
        path.write_bytes(bytes(data))
        with pytest.raises(IntegrityError) as err:
            load_snapshot(path)
        assert err.value.artifact == str(path)

    def test_verify_false_skips_the_checksum(self, tmp_path):
        path, _ = self._write(tmp_path)
        body = path.read_text(encoding="utf-8").split("\n", 1)[1]
        payload = json.loads(body)
        payload["wal_lsn"] = 99  # silently diverge from the stored checksum
        path.write_text(
            path.read_text(encoding="utf-8").split("\n", 1)[0]
            + "\n"
            + json.dumps(payload, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )
        loaded = load_snapshot(path, verify=False)
        assert loaded["wal_lsn"] == 99
        assert loaded["verified"] is False

    def test_format1_snapshot_still_loads(self, tmp_path):
        path, columns = self._write(tmp_path)
        body = path.read_text(encoding="utf-8").split("\n", 1)[1]
        payload = json.loads(body)
        payload["format"] = 1
        payload.pop("column_digests")
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        loaded = load_snapshot(path)
        assert loaded["format"] == 1
        assert loaded["verified"] is False
        assert loaded["documents"]["d"] == columns


class TestDurabilityKnob:
    def test_durability_fsync_sets_wal_fsync(self, tmp_path):
        store = DocumentStore(NATURAL, directory=tmp_path / "s", durability="fsync")
        assert store.durability == "fsync"
        assert store._wal.fsync is True

    def test_durability_none_is_the_default(self, tmp_path):
        store = DocumentStore(NATURAL, directory=tmp_path / "s")
        assert store.durability == "none"
        assert store._wal.fsync is False

    def test_fsync_flag_still_works(self, tmp_path):
        store = DocumentStore(NATURAL, directory=tmp_path / "s", fsync=True)
        assert store.durability == "fsync"

    def test_contradictory_settings_refuse(self, tmp_path):
        with pytest.raises(StoreError, match="contradict"):
            DocumentStore(
                NATURAL, directory=tmp_path / "s", fsync=True, durability="none"
            )

    def test_unknown_policy_refuses(self, tmp_path):
        with pytest.raises(StoreError, match="unknown durability"):
            DocumentStore(NATURAL, directory=tmp_path / "s", durability="paranoid")


class TestObservabilityWiring:
    def test_integrity_event_kinds_are_declared(self):
        for kind in (
            "integrity.checksum-mismatch",
            "integrity.quarantine",
            "integrity.salvage",
        ):
            assert kind in EVENT_CATALOG

    def test_checksum_mismatch_bumps_counter_and_emits(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        WriteAheadLog(path).append({"op": "a"})
        record = json.loads(path.read_text(encoding="utf-8"))
        record["crc"] = (record["crc"] + 1) % (1 << 32)
        path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        before = INTEGRITY_ERRORS.value(artifact="wal-record") or 0
        with recording():
            with pytest.raises(IntegrityError):
                WriteAheadLog(path)
            events = recent_events("integrity.checksum-mismatch")
        assert INTEGRITY_ERRORS.value(artifact="wal-record") == before + 1
        assert any(e["attrs"]["artifact_kind"] == "wal-record" for e in events)

    def test_fsck_emits_quarantine_and_salvage(self, tmp_path):
        store, _ = _build_store(tmp_path / "s")
        del store
        wal_path = tmp_path / "s" / "wal.jsonl"
        data = bytearray(wal_path.read_bytes())
        data[-5] ^= 0xFF
        wal_path.write_bytes(bytes(data))
        with recording():
            report = fsck_store(tmp_path / "s", repair=True)
            quarantines = recent_events("integrity.quarantine")
            salvages = recent_events("integrity.salvage")
        assert report.ok
        assert quarantines and salvages
        assert salvages[-1]["attrs"]["salvaged_records"] == 1

    def test_readiness_probe_flags_corruption(self, tmp_path):
        from repro.obs.http import store_integrity_check

        store, _ = _build_store(tmp_path / "s")
        check = store_integrity_check(store)
        ok, _detail = check()
        assert ok
        data = bytearray((tmp_path / "s" / "wal.jsonl").read_bytes())
        data[-5] ^= 0xFF
        (tmp_path / "s" / "wal.jsonl").write_bytes(bytes(data))
        ok, detail = check()
        assert not ok
        assert "CRC32" in detail or "unparseable" in detail

    def test_readiness_probe_trivial_for_memory_stores(self):
        from repro.obs.http import store_integrity_check

        ok, detail = store_integrity_check(DocumentStore(NATURAL))()
        assert ok
        assert "in-memory" in detail


class TestFsckCli:
    def _seed(self, tmp_path):
        store, _ = _build_store(tmp_path / "s")
        del store
        return tmp_path / "s"

    def test_clean_store_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        directory = self._seed(tmp_path)
        assert main(["fsck", "--dir", str(directory)]) == 0
        assert "status: clean" in capsys.readouterr().out

    def test_corrupt_store_exits_nonzero_then_repairs(self, tmp_path, capsys):
        from repro.cli import main

        directory = self._seed(tmp_path)
        data = bytearray((directory / "wal.jsonl").read_bytes())
        data[-5] ^= 0xFF
        (directory / "wal.jsonl").write_bytes(bytes(data))
        assert main(["fsck", "--dir", str(directory)]) == 1
        assert "CORRUPT" in capsys.readouterr().out
        assert main(["fsck", "--dir", str(directory), "--repair"]) == 0
        capsys.readouterr()
        assert main(["fsck", "--dir", str(directory)]) == 0
        assert (directory / "wal.jsonl.quarantine").exists()

    def test_json_output(self, tmp_path, capsys):
        from repro.cli import main

        directory = self._seed(tmp_path)
        assert main(["fsck", "--dir", str(directory), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["checked"]["wal_records"] == 2

    def test_ingest_accepts_durability_flag(self, tmp_path, capsys):
        from repro.cli import main

        xml = tmp_path / "doc.xml"
        xml.write_text("<a><b>x</b></a>", encoding="utf-8")
        code = main(
            [
                "store",
                "ingest",
                "--dir",
                str(tmp_path / "s"),
                "--doc",
                "d",
                "--input",
                str(xml),
                "--durability",
                "fsync",
            ]
        )
        assert code == 0
