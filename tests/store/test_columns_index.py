"""Shredded columns and structural indexes: determinism and exact navigation."""

from __future__ import annotations

import pytest

from repro.kcollections import KSet
from repro.errors import StoreError
from repro.paperdata import figure4_source
from repro.semirings import NATURAL, PROVENANCE
from repro.semirings.registry import standard_semirings
from repro.shredding import evaluate_xpath_via_datalog, shred_forest
from repro.store import ShreddedColumns, StructuralIndex
from repro.store.index import _fuse_steps
from repro.uxml.navigation import apply_axis
from repro.uxquery.ast import Step
from repro.workloads import random_forest

CHAINS = [
    (),
    (Step("self", "a"),),
    (Step("child", "*"),),
    (Step("child", "c"),),
    (Step("descendant", "c"),),
    (Step("descendant", "*"),),
    (Step("descendant-or-self", "b"),),
    (Step("descendant-or-self", "*"), Step("child", "c")),
    (Step("child", "*"), Step("descendant", "*")),
    (Step("descendant", "*"), Step("descendant", "c")),
    (Step("child", "*"), Step("child", "*"), Step("child", "*")),
]


def _direct(forest: KSet, steps) -> KSet:
    current = forest
    for step in steps:
        current = apply_axis(current, step.axis, step.nodetest)
    return current


class TestColumns:
    def test_rows_follow_shred_order(self):
        forest = figure4_source()
        columns = ShreddedColumns.from_forest(forest)
        assert list(columns.facts().items()) == list(shred_forest(forest).items())

    def test_forest_round_trip(self, any_semiring):
        forest = random_forest(any_semiring, num_trees=3, depth=3, fanout=2, seed=3)
        columns = ShreddedColumns.from_forest(forest)
        assert columns.forest() == forest

    def test_payload_round_trip(self, any_semiring):
        forest = random_forest(any_semiring, num_trees=2, depth=3, fanout=2, seed=4)
        columns = ShreddedColumns.from_forest(forest)
        rebuilt = ShreddedColumns.from_payload(any_semiring, columns.to_payload())
        assert rebuilt == columns

    def test_equal_forests_equal_columns(self, any_semiring):
        forest = random_forest(any_semiring, num_trees=4, depth=3, fanout=2, seed=5)
        # Rebuild the same K-set value with a different insertion order.
        shuffled = KSet(any_semiring, list(reversed(list(forest.items()))))
        assert shuffled == forest
        assert ShreddedColumns.from_forest(shuffled) == ShreddedColumns.from_forest(forest)

    def test_ragged_columns_rejected(self):
        with pytest.raises(StoreError, match="equal lengths"):
            ShreddedColumns(NATURAL, (0,), (1, 2), ("a", "b"), (1, 1))


class TestIndexStructure:
    def test_intervals_cover_subtrees(self):
        forest = random_forest(NATURAL, num_trees=2, depth=4, fanout=2, seed=6)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        for nid in index.all_nids:
            end = index.subtree_end[nid]
            descendants = {
                other
                for other in index.all_nids
                if nid < other <= end
            }
            # Walk the child lists to get the reference descendant set.
            frontier = list(index.children_of.get(nid, ()))
            reference = set()
            while frontier:
                node = frontier.pop()
                reference.add(node)
                frontier.extend(index.children_of.get(node, ()))
            assert descendants == reference

    def test_label_index_counts(self):
        forest = figure4_source()
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        total = sum(index.count_label(label) for label in index.label_to_nids)
        assert total == index.node_count() == len(index.columns)

    def test_out_of_order_columns_rejected(self):
        with pytest.raises(StoreError, match="precedes its parent"):
            StructuralIndex(
                ShreddedColumns(NATURAL, (1, 0), (2, 1), ("b", "a"), (1, 1))
            )

    def test_bfs_ordered_columns_rejected(self):
        """Non-DFS id allocation would make subtree intervals cover siblings;
        the index must refuse it rather than navigate wrongly."""
        columns = ShreddedColumns(
            NATURAL,
            (0, 1, 1, 2, 2),
            (1, 2, 3, 4, 5),
            ("a", "b", "b", "c", "c"),
            (1, 1, 1, 1, 1),
        )
        with pytest.raises(StoreError, match="not a depth-first pre-order"):
            StructuralIndex(columns)

    def test_non_integer_node_ids_rejected(self):
        columns = ShreddedColumns(NATURAL, (0,), ("one",), ("a",), (1,))
        with pytest.raises(StoreError, match="must be integers"):
            StructuralIndex(columns)

    def test_fuse_double_slash(self):
        fused = _fuse_steps([Step("descendant-or-self", "*"), Step("child", "c")])
        assert [str(step) for step in fused] == ["descendant::c"]
        # A non-wildcard descendant-or-self is not fused.
        kept = _fuse_steps([Step("descendant-or-self", "b"), Step("child", "c")])
        assert [str(step) for step in kept] == ["descendant-or-self::b", "child::c"]


class TestNavigationExactness:
    @pytest.mark.parametrize("seed", range(3))
    def test_against_direct_semantics_every_semiring(self, any_semiring, seed):
        forest = random_forest(any_semiring, num_trees=3, depth=4, fanout=2, seed=seed)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        assert index.forest() == forest
        for chain in CHAINS:
            assert index.navigate(chain) == _direct(forest, chain), [
                str(step) for step in chain
            ]

    def test_against_datalog_semantics(self):
        for semiring in (NATURAL, PROVENANCE):
            forest = random_forest(semiring, num_trees=2, depth=3, fanout=2, seed=11)
            index = StructuralIndex(ShreddedColumns.from_forest(forest))
            steps = [Step("descendant-or-self", "*"), Step("child", "c")]
            assert index.navigate(steps) == evaluate_xpath_via_datalog(forest, steps)

    def test_figure4_descendant(self):
        source = figure4_source()
        index = StructuralIndex(ShreddedColumns.from_forest(source))
        steps = [Step("descendant-or-self", "*"), Step("child", "c")]
        assert index.navigate(steps) == _direct(source, steps)

    def test_nested_frontier_counts(self, nat_builder):
        """Descendant steps from a nested frontier sum multiplicities."""
        b = nat_builder
        # a > b > b > c: //b//c reaches c via both b nodes.
        tree = b.tree("a", b.tree("b", b.tree("b", b.leaf("c"))))
        forest = b.forest(tree)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        chain = (Step("descendant", "b"), Step("descendant", "c"))
        assert index.navigate(chain) == _direct(forest, chain)

    def test_unsupported_axis_raises(self):
        forest = random_forest(NATURAL, num_trees=1, depth=2, fanout=1, seed=0)
        index = StructuralIndex(ShreddedColumns.from_forest(forest))
        # Build a step with an unsupported axis by bypassing Step validation.
        bogus = Step.__new__(Step)
        bogus.axis = "parent"
        bogus.nodetest = "*"
        with pytest.raises(StoreError, match="not servable"):
            index.navigate([bogus])
