"""DocumentStore: the facade, its stats, and the recovery invariant.

The acceptance bar of the subsystem:

* the pushdown path returns exactly the single-shot
  ``PreparedQuery.evaluate`` result for every registry semiring on the
  standard query suite (fallback counts exposed in stats);
* a killed-and-recovered store (snapshot + WAL replay) is bit-identical —
  columns, annotations, registered view caches — to the uninterrupted store
  on randomized update streams.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import StoreError
from repro.ivm import Delta
from repro.semirings import NATURAL, PROVENANCE
from repro.semirings.registry import standard_semirings
from repro.store import DocumentStore
from repro.uxquery import prepare_query
from repro.workloads import random_forest, random_tree, standard_query_suite


def _random_delta(semiring, document, rng: random.Random, counter: list[int]):
    """One randomized update: insert / full-delete / re-annotate a member."""
    members = list(document.items())
    samples = [v for v in semiring.sample_elements() if not semiring.is_zero(v)]
    op = rng.choice(["insert", "insert", "delete", "reannotate"]) if members else "insert"
    if op == "insert":
        counter[0] += 1
        tree = random_tree(semiring, depth=2, fanout=2, seed=1000 + counter[0] * 7)
        return Delta.insertion(semiring, tree, rng.choice(samples))
    tree, annotation = rng.choice(members)
    if op == "delete":
        return Delta.deletion(semiring, tree, annotation)
    return Delta.reannotation(semiring, tree, annotation, rng.choice(samples))


class TestFacade:
    def test_ingest_and_query(self):
        store = DocumentStore(NATURAL)
        forest = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=1)
        store.ingest("doc", forest)
        prepared = prepare_query("element out { $S//c }", NATURAL, {"S": forest})
        assert store.query("element out { $S//c }") == prepared.evaluate({"S": forest})
        stats = store.stats()
        assert stats.documents == 1 and stats.queries == 1 and stats.pushdowns == 1
        assert stats.pushdown_rate == 1.0

    def test_duplicate_ingest_needs_replace(self):
        store = DocumentStore(NATURAL)
        forest = random_forest(NATURAL, num_trees=1, depth=2, fanout=1, seed=2)
        store.ingest("doc", forest)
        with pytest.raises(StoreError, match="already exists"):
            store.ingest("doc", forest)
        store.ingest("doc", forest, replace=True)

    def test_doc_id_resolution(self):
        store = DocumentStore(NATURAL)
        with pytest.raises(StoreError, match="no document"):
            store.query("$S/*", "missing")
        store.ingest("a", random_forest(NATURAL, num_trees=1, depth=2, fanout=1, seed=3))
        store.query("$S/*")  # unambiguous without a doc_id
        store.ingest("b", random_forest(NATURAL, num_trees=1, depth=2, fanout=1, seed=4))
        with pytest.raises(StoreError, match="doc_id is required"):
            store.query("$S/*")

    def test_semiring_mismatch_rejected(self):
        store = DocumentStore(NATURAL)
        prov = random_forest(PROVENANCE, num_trees=1, depth=2, fanout=1, seed=5)
        with pytest.raises(StoreError, match="cannot enter"):
            store.ingest("doc", prov)

    def test_query_many_matches_per_document_evaluation(self):
        store = DocumentStore(NATURAL)
        forests = {
            f"doc{i}": random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=10 + i)
            for i in range(3)
        }
        for doc_id, forest in forests.items():
            store.ingest(doc_id, forest)
        query = "element out { $S//c }"
        results = store.query_many(query)
        expected = [
            prepare_query(query, NATURAL, {"S": forest}).evaluate({"S": forest})
            for _, forest in sorted(forests.items())
        ]
        assert results == expected
        merged = store.query_many("$S//c", merge=True)
        single = None
        for forest in forests.values():
            part = prepare_query("$S//c", NATURAL, {"S": forest}).evaluate({"S": forest})
            single = part if single is None else single.union(part)
        assert merged == single

    def test_update_maintains_views(self):
        store = DocumentStore(NATURAL)
        forest = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=20)
        store.ingest("doc", forest)
        view = store.register_view("v", "$S//c", "doc")
        tree = random_tree(NATURAL, depth=2, fanout=2, seed=21)
        store.update("doc", Delta.insertion(NATURAL, tree, 2))
        updated = store.forest("doc")
        prepared = prepare_query("$S//c", NATURAL, {"S": updated})
        assert view.result == prepared.evaluate({"S": updated})
        assert store.view("v") is view
        assert store.stats().updates == 1

    def test_replace_rebuilds_views(self):
        """Replacing a document re-materializes every view over it."""
        store = DocumentStore(NATURAL)
        first = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=22)
        second = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=23)
        store.ingest("doc", first)
        view = store.register_view("v", "$S//c", "doc")
        store.ingest("doc", second, replace=True)
        prepared = prepare_query("$S//c", NATURAL, {"S": second})
        rebuilt = store.view("v")
        assert rebuilt is not view  # re-materialized, not stale
        assert rebuilt.result == prepared.evaluate({"S": second})
        # Maintenance after the replace tracks the new document.
        tree = random_tree(NATURAL, depth=2, fanout=2, seed=24)
        store.update("doc", Delta.insertion(NATURAL, tree, 2))
        updated = store.forest("doc")
        assert store.view("v").result == prepared.evaluate({"S": updated})

    def test_split_memo_keys_structurally(self):
        """Two distinct query ASTs that render identically must not share a
        cached split (``Query.__str__`` is not injective)."""
        from repro.uxquery.ast import LabelExpr, PathExpr, Step, VarExpr

        store = DocumentStore(NATURAL)
        forest = random_forest(NATURAL, num_trees=2, depth=2, fanout=2, seed=26)
        store.ingest("doc", forest)
        path_query = PathExpr(VarExpr("S"), (Step("child", "a"),))
        label_query = LabelExpr(str(path_query))  # a label spelled "$S/child::a"
        assert str(label_query) == str(path_query)
        path_split = store._pushdown.split_for(
            store.plan_cache.get(path_query, NATURAL, env_types={"S": "forest"}), "S"
        )
        label_split = store._pushdown.split_for(
            store.plan_cache.get(label_query, NATURAL, env_types={"S": "forest"}), "S"
        )
        assert path_split is not None and path_split.trivial
        assert label_split is None  # no document variable in a label literal
        # And the query results follow each AST's own semantics.
        prepared = prepare_query(path_query, NATURAL, env_types={"S": "forest"})
        assert store.query(path_query) == prepared.evaluate({"S": forest})
        assert store.query(label_query) == str(path_query)

    def test_split_cache_is_bounded(self):
        from repro.store.pushdown import PushdownExecutor

        store = DocumentStore(NATURAL)
        store.ingest("doc", random_forest(NATURAL, num_trees=1, depth=2, fanout=1, seed=25))
        bound = PushdownExecutor.SPLIT_CACHE_SIZE
        for index in range(bound + 10):
            store.query(f"$S//label{index}")
        assert len(store._pushdown._splits) <= bound

    def test_pushdown_vs_single_shot_on_suite_every_registry_semiring(self):
        for semiring in standard_semirings():
            store = DocumentStore(semiring)
            forest = random_forest(semiring, num_trees=3, depth=3, fanout=2, seed=30)
            store.ingest("doc", forest)
            for name, query in standard_query_suite().items():
                prepared = prepare_query(query, semiring, {"S": forest})
                assert store.query(query) == prepared.evaluate({"S": forest}), (
                    semiring.name,
                    name,
                )
            stats = store.stats()
            assert stats.fallbacks == 0, semiring.name
            assert stats.pushdowns == stats.queries

    def test_fallback_counted_in_stats(self):
        store = DocumentStore(NATURAL)
        store.ingest("doc", random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=31))
        store.query("element out { ($S/a, $S//b) }")
        stats = store.stats()
        assert stats.fallbacks == 1 and stats.pushdowns == 0

    def test_in_memory_store_cannot_compact(self):
        store = DocumentStore(NATURAL)
        with pytest.raises(StoreError, match="nothing to compact"):
            store.compact()

    def test_plan_cache_is_per_store(self):
        store = DocumentStore(NATURAL)
        store.ingest("doc", random_forest(NATURAL, num_trees=1, depth=2, fanout=1, seed=32))
        store.query("$S/*")
        store.query("$S/*")
        cache = store.plan_cache.stats()
        assert cache.compiles == 1 and cache.hits >= 1


class TestDurability:
    def test_open_requires_existing_or_semiring(self, tmp_path):
        with pytest.raises(StoreError, match="needs a semiring"):
            DocumentStore.open(tmp_path / "absent")

    def test_semiring_pinned_in_meta(self, tmp_path):
        DocumentStore(NATURAL, directory=tmp_path / "s")
        with pytest.raises(StoreError, match="is over"):
            DocumentStore(PROVENANCE, directory=tmp_path / "s")
        reopened = DocumentStore.open(tmp_path / "s")
        assert reopened.semiring == NATURAL

    def test_non_registry_semiring_cannot_be_durable(self, tmp_path):
        from repro.semirings import ProductSemiring
        from repro.semirings.boolean import BOOLEAN

        with pytest.raises(StoreError, match="not in the registry"):
            DocumentStore(ProductSemiring(BOOLEAN, NATURAL), directory=tmp_path / "p")

    def test_recovery_without_snapshot(self, tmp_path):
        store = DocumentStore(NATURAL, directory=tmp_path / "s")
        forest = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=40)
        store.ingest("doc", forest)
        store.register_view("v", "$S//c", "doc")
        store.update("doc", Delta.insertion(NATURAL, random_tree(NATURAL, depth=2, fanout=2, seed=41), 1))
        recovered = DocumentStore.open(tmp_path / "s")
        assert recovered.columns("doc") == store.columns("doc")
        assert recovered.forest("doc") == store.forest("doc")
        assert recovered.view("v").result == store.view("v").result
        assert recovered.stats().recovered_records == 3

    def test_compaction_truncates_and_recovery_uses_snapshot(self, tmp_path):
        store = DocumentStore(NATURAL, directory=tmp_path / "s")
        forest = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=42)
        store.ingest("doc", forest)
        store.compact()
        assert store.stats().wal_records == 0
        tree = random_tree(NATURAL, depth=2, fanout=2, seed=43)
        store.update("doc", Delta.insertion(NATURAL, tree, 3))
        recovered = DocumentStore.open(tmp_path / "s")
        assert recovered.stats().recovered_records == 1  # only the tail update
        assert recovered.columns("doc") == store.columns("doc")

    def test_crash_between_snapshot_and_truncate_is_safe(self, tmp_path):
        """Old WAL records at or below the snapshot lsn are never re-applied."""
        from repro.store.snapshot import write_snapshot
        from repro.store.store import _SNAPSHOT_FILE

        store = DocumentStore(NATURAL, directory=tmp_path / "s")
        forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=44)
        store.ingest("doc", forest)
        tree = random_tree(NATURAL, depth=2, fanout=2, seed=45)
        store.update("doc", Delta.insertion(NATURAL, tree, 1))
        # Simulate the crash window: snapshot written, WAL left untruncated.
        write_snapshot(
            (tmp_path / "s") / _SNAPSHOT_FILE,
            semiring_name="natural",
            wal_lsn=2,
            documents={"doc": store.columns("doc")},
            views=[],
        )
        recovered = DocumentStore.open(tmp_path / "s")
        assert recovered.stats().recovered_records == 0
        assert recovered.columns("doc") == store.columns("doc")

    def test_torn_tail_recovers_prefix(self, tmp_path):
        store = DocumentStore(NATURAL, directory=tmp_path / "s")
        forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=46)
        store.ingest("doc", forest)
        columns_before = store.columns("doc")
        with open(tmp_path / "s" / "wal.jsonl", "a", encoding="utf-8") as handle:
            handle.write('{"op": "update", "doc": "doc", "chan')  # torn append
        recovered = DocumentStore.open(tmp_path / "s")
        assert recovered.columns("doc") == columns_before

    def test_update_from_reopened_store_after_compaction(self, tmp_path):
        """lsns stay monotone across processes, not just within one.

        Regression: a reopened store sees a truncated (empty) WAL; its next
        record must be numbered past the snapshot's high-water mark, or the
        following recovery would skip it as already-snapshotted and silently
        lose the update.
        """
        first = DocumentStore(NATURAL, directory=tmp_path / "s")
        forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=50)
        first.ingest("doc", forest)
        first.update(
            "doc", Delta.insertion(NATURAL, random_tree(NATURAL, depth=2, fanout=1, seed=51), 1)
        )
        first.compact()
        # "Another process": a fresh store over the same directory.
        second = DocumentStore.open(tmp_path / "s")
        tree = random_tree(NATURAL, depth=2, fanout=2, seed=52)
        second.update("doc", Delta.insertion(NATURAL, tree, 4))
        # And a third recovery must see the second process's update.
        third = DocumentStore.open(tmp_path / "s")
        assert third.stats().recovered_records == 1
        assert third.columns("doc") == second.columns("doc")
        assert tree in third.forest("doc")

    def test_auto_compaction(self, tmp_path):
        store = DocumentStore(NATURAL, directory=tmp_path / "s", snapshot_every=3)
        forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=47)
        store.ingest("doc", forest)
        for seed in (48, 49):
            store.update(
                "doc",
                Delta.insertion(NATURAL, random_tree(NATURAL, depth=2, fanout=2, seed=seed), 1),
            )
        stats = store.stats()
        assert stats.snapshots == 1
        assert stats.wal_records == 0


class TestRecoveryInvariant:
    """Snapshot + WAL replay == the uninterrupted store, bit for bit."""

    @pytest.mark.parametrize("seed", range(3))
    def test_randomized_streams_every_registry_semiring(self, tmp_path, seed):
        # Enumerate: other tests may register extra factories whose semirings
        # share a .name, so the name alone is not a unique directory key.
        for position, semiring in enumerate(standard_semirings()):
            rng = random.Random(seed * 1001 + 7)
            counter = [0]
            directory = tmp_path / f"{position}-{semiring.name}-{seed}"
            live = DocumentStore(semiring, directory=directory)
            forest = random_forest(
                semiring, num_trees=3, depth=3, fanout=2, seed=seed
            )
            live.ingest("doc", forest)
            live.register_view("hits", "$S//c", "doc")
            compact_at = rng.randrange(8)
            for step in range(8):
                if step == compact_at:
                    live.compact()
                delta = _random_delta(semiring, live.forest("doc"), rng, counter)
                live.update("doc", delta)

            recovered = DocumentStore.open(directory)
            # Bit-identical columns and annotations...
            assert recovered.columns("doc") == live.columns("doc"), semiring.name
            assert recovered.forest("doc") == live.forest("doc"), semiring.name
            # ... and registered view caches.
            assert (
                recovered.view("hits").result == live.view("hits").result
            ), semiring.name
            # Both equal re-evaluation on the final document.
            prepared = prepare_query("$S//c", semiring, env_types={"S": "forest"})
            assert recovered.view("hits").result == prepared.evaluate(
                {"S": recovered.forest("doc")}
            ), semiring.name


class TestCodegenServing:
    """The store's serving paths execute source-generated programs: the
    pushdown residual, the single-shot fallback, and query_many batches all
    compile through the engine's two-stage pipeline (observable on the
    plans' execution counters)."""

    def test_residual_plan_executes_generated_code(self):
        forest = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=61)
        store = DocumentStore(NATURAL)
        store.ingest("doc", forest)
        query = "element out { $S/*/* }"
        answer = store.query(query)
        prepared = prepare_query(query, NATURAL, {"S": forest})
        assert answer == prepared.evaluate({"S": forest})
        assert store.stats().pushdowns == 1
        # The residual (element out { $__nav }) was compiled in the store's
        # plan cache and ran as generated bytecode.
        residuals = [
            plan
            for plan in store.plan_cache._plans.values()
            if "__nav" in str(plan.surface)
        ]
        assert residuals and residuals[0].generated is not None
        assert residuals[0].generated.calls > 0

    def test_fallback_path_executes_generated_code(self):
        forest = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=62)
        store = DocumentStore(NATURAL)
        store.ingest("doc", forest)
        # Mixed chains decline the split: the unmodified plan serves the
        # query — through its generated program.
        query = "element out { ($S/a, $S/b/c) }"
        answer = store.query(query)
        prepared = prepare_query(query, NATURAL, {"S": forest})
        assert answer == prepared.evaluate({"S": forest})
        assert store.stats().fallbacks == 1
        cached = store.plan_cache.get(query, NATURAL, env_types={"S": "forest"})
        assert cached.generated is not None
        assert cached.generated.calls > 0

    def test_query_many_batches_generated_code(self):
        store = DocumentStore(NATURAL)
        for index in range(3):
            store.ingest(
                f"doc{index}",
                random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=70 + index),
            )
        query = "($S)/*/*"
        results = store.query_many(query)
        for doc_id, result in zip(store.document_ids(), results):
            assert result == prepare_query(query, NATURAL, {"S": store.forest(doc_id)}).evaluate(
                {"S": store.forest(doc_id)}
            )
        cached = store.plan_cache.get(query, NATURAL, env_types={"S": "forest"})
        assert cached.generated is not None
        assert cached.generated.calls >= 3
