"""Integration tests replaying every worked example (figure) of the paper."""

from __future__ import annotations

import pytest

from repro.paperdata import (
    figure1_expected_children,
    figure1_query,
    figure1_source,
    figure4_expected_children,
    figure4_query,
    figure4_source,
    figure5_algebra,
    figure5_expected_q,
    figure5_relations,
    figure5_schemas,
    figure5_source_uxml,
    figure5_uxquery,
    figure6_expected_tuples,
    figure6_source_uxml,
    figure7_expected_clearances,
    figure7_valuation,
    section5_query,
    section5_representation,
)
from repro.relational import algebra_to_uxquery, evaluate_algebra, forest_to_relation
from repro.semirings import CLEARANCE, PROVENANCE
from repro.uxquery import evaluate_query


@pytest.mark.parametrize("method", ["nrc", "direct"])
class TestFigure1:
    def test_answer_children_match(self, method):
        answer = evaluate_query(figure1_query(), PROVENANCE, {"S": figure1_source()}, method=method)
        assert answer.label == "p"
        assert dict(answer.children.items()) == dict(figure1_expected_children())

    def test_equivalent_xpath_form(self, method):
        """The query is equivalent to the shorter XPath $S/*/* (footnote 6)."""
        answer = evaluate_query("element p { $S/*/* }", PROVENANCE, {"S": figure1_source()}, method=method)
        assert dict(answer.children.items()) == dict(figure1_expected_children())


@pytest.mark.parametrize("method", ["nrc", "direct"])
class TestFigure4:
    def test_descendant_answer(self, method):
        answer = evaluate_query(figure4_query(), PROVENANCE, {"T": figure4_source()}, method=method)
        assert answer.label == "r"
        assert dict(answer.children.items()) == dict(figure4_expected_children())

    def test_descendant_axis_spelled_out(self, method):
        answer = evaluate_query(
            "element r { $T/descendant::c }", PROVENANCE, {"T": figure4_source()}, method=method
        )
        assert dict(answer.children.items()) == dict(figure4_expected_children())


class TestFigure5:
    def test_relational_algebra_answer(self):
        assert evaluate_algebra(figure5_algebra(), figure5_relations()) == figure5_expected_q()

    @pytest.mark.parametrize("method", ["nrc", "direct"])
    def test_uxquery_on_encoding_matches(self, method):
        answer = evaluate_query(
            figure5_uxquery(), PROVENANCE, {"d": figure5_source_uxml()}, method=method
        )
        assert answer.label == "Q"
        assert forest_to_relation(answer.children, ("A", "C")) == figure5_expected_q()

    def test_proposition1_generic_translation(self):
        query = algebra_to_uxquery(figure5_algebra(), figure5_schemas())
        answer = evaluate_query(query, PROVENANCE, {"d": figure5_source_uxml()})
        assert forest_to_relation(answer, ("A", "C")) == figure5_expected_q()


@pytest.mark.parametrize("method", ["nrc", "direct"])
class TestFigure6:
    def test_extended_annotations_q1_to_q8(self, method):
        answer = evaluate_query(
            figure5_uxquery(), PROVENANCE, {"d": figure6_source_uxml()}, method=method
        )
        assert dict(answer.children.items()) == dict(figure6_expected_tuples())

    def test_non_tuple_annotations_participate(self, method):
        """Every answer annotation mentions the relation-level token w1 and the attribute token y2."""
        answer = evaluate_query(
            figure5_uxquery(), PROVENANCE, {"d": figure6_source_uxml()}, method=method
        )
        for _, annotation in answer.children.items():
            assert {"w1", "y2"} <= annotation.variables


class TestFigure7:
    def test_clearance_view(self):
        from repro.security import clearance_view_via_provenance

        view = clearance_view_via_provenance(
            figure5_uxquery(), {"d": figure6_source_uxml()}, figure7_valuation()
        )
        relation = forest_to_relation(view.children, ("A", "C"))
        assert dict(relation.items()) == figure7_expected_clearances()

    def test_access_summary(self):
        """Confidential clearance sees the first and last tuples; secret all but one (Fig. 7 text)."""
        expected = figure7_expected_clearances()
        confidential = {row for row, level in expected.items() if CLEARANCE.accessible(level, "C")}
        secret = {row for row, level in expected.items() if CLEARANCE.accessible(level, "S")}
        assert confidential == {("a", "c"), ("f", "e")}
        assert len(secret) == 5 and ("f", "c") not in secret


class TestSection5:
    def test_six_boolean_worlds(self):
        from repro.incomplete import mod_boolean

        assert len(mod_boolean(section5_representation())) == 6

    def test_strong_representation(self):
        from repro.incomplete import check_strong_representation
        from repro.semirings import BOOLEAN

        report = check_strong_representation(
            section5_query(), "T", section5_representation(), BOOLEAN
        )
        assert report["holds"]


class TestSection7:
    def test_shredded_descendant_query(self):
        from repro.shredding import evaluate_xpath_via_datalog
        from repro.uxml.navigation import double_slash
        from repro.uxquery.ast import Step

        source = figure4_source(x1="0")
        answer = evaluate_xpath_via_datalog(
            source, [Step("descendant-or-self", "*"), Step("child", "c")]
        )
        assert answer == double_slash(source, "c")
