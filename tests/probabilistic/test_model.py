"""Probabilistic K-UXML: independent events, world distributions, marginals."""

from __future__ import annotations

import math

import pytest

from repro.errors import PossibleWorldsError
from repro.probabilistic import (
    ProbabilisticUXML,
    bernoulli_distributions,
    geometric_distributions,
    probability_of_event,
)
from repro.paperdata import section5_query, section5_representation
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, BoolExpr
from repro.uxml import TreeBuilder


class TestEventProbability:
    def test_single_variable(self):
        x = BoolExpr.variable("x")
        assert probability_of_event(x, {"x": 0.3}) == pytest.approx(0.3)

    def test_conjunction_of_independent_events(self):
        x, y = BoolExpr.variable("x"), BoolExpr.variable("y")
        assert probability_of_event(x & y, {"x": 0.5, "y": 0.4}) == pytest.approx(0.2)

    def test_disjunction_uses_inclusion_exclusion(self):
        x, y = BoolExpr.variable("x"), BoolExpr.variable("y")
        assert probability_of_event(x | y, {"x": 0.5, "y": 0.4}) == pytest.approx(0.7)

    def test_constants(self):
        assert probability_of_event(BoolExpr.true(), {}) == 1.0
        assert probability_of_event(BoolExpr.false(), {}) == 0.0

    def test_missing_probability_raises(self):
        with pytest.raises(PossibleWorldsError):
            probability_of_event(BoolExpr.variable("x"), {})


class TestDistributions:
    def test_bernoulli_distributions(self):
        dists = bernoulli_distributions({"x": 0.25})
        assert dists["x"][True] == 0.25
        assert dists["x"][False] == 0.75
        with pytest.raises(PossibleWorldsError):
            bernoulli_distributions({"x": 1.5})

    def test_geometric_distributions_sum_to_one(self):
        dists = geometric_distributions(["x"], max_value=5)
        assert math.isclose(sum(dists["x"].values()), 1.0)
        assert dists["x"][1] == 0.5
        assert dists["x"][0] == 0.0


class TestProbabilisticUXML:
    @pytest.fixture
    def model(self):
        return ProbabilisticUXML.bernoulli(
            section5_representation(), {"y1": 0.5, "y2": 0.5, "y3": 0.5}
        )

    def test_requires_nx_annotations(self, nat_builder):
        with pytest.raises(PossibleWorldsError):
            ProbabilisticUXML.bernoulli(nat_builder.forest(nat_builder.leaf("a")), {})

    def test_all_tokens_need_distributions(self):
        with pytest.raises(PossibleWorldsError):
            ProbabilisticUXML.bernoulli(section5_representation(), {"y1": 0.5})

    def test_distributions_must_sum_to_one(self):
        with pytest.raises(PossibleWorldsError):
            ProbabilisticUXML(
                section5_representation(),
                {"y1": {True: 0.5, False: 0.2}, "y2": {True: 1.0}, "y3": {True: 1.0}},
                BOOLEAN,
            )

    def test_world_distribution_sums_to_one(self, model):
        distribution = model.world_distribution()
        assert math.isclose(sum(distribution.values()), 1.0)
        # six possible worlds, but two valuation classes collapse
        assert len(distribution) == 6

    def test_uniform_bernoulli_world_probabilities(self, model):
        """Each world's probability is a multiple of 1/8 under fair coins."""
        for probability in model.world_distribution().values():
            assert math.isclose(probability * 8, round(probability * 8))

    def test_answer_distribution_matches_querying_each_world(self, model):
        answer_distribution = model.answer_distribution(section5_query(), "T")
        assert math.isclose(sum(answer_distribution.values()), 1.0)
        assert len(answer_distribution) == 5

    def test_member_probability(self, model):
        # The leaf c exists iff y3 or (y1 and y2): probability 1 - (1-0.5)*(1-0.25) = 0.625.
        b = TreeBuilder(PROVENANCE)
        leaf_c = b.leaf("c")
        assert model.member_probability(section5_query(), "T", leaf_c) == pytest.approx(0.625)

    def test_member_probability_of_absent_member(self, model):
        b = TreeBuilder(PROVENANCE)
        assert model.member_probability(section5_query(), "T", b.leaf("zzz")) == 0.0

    def test_member_probability_requires_boolean_target(self):
        model = ProbabilisticUXML.with_repetitions(section5_representation(), max_value=2)
        b = TreeBuilder(PROVENANCE)
        with pytest.raises(PossibleWorldsError):
            model.member_probability(section5_query(), "T", b.leaf("c"))

    def test_repetition_model_worlds(self):
        model = ProbabilisticUXML.with_repetitions(section5_representation(), max_value=2)
        distribution = model.world_distribution()
        assert math.isclose(sum(distribution.values()), 1.0)
        assert model.target == NATURAL
