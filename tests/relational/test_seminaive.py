"""Semi-naive vs naive Datalog iteration: same fixpoint, every semiring.

The semi-naive strategy (the default) must be observably identical to the
naive reference strategy — same derived facts, same annotations, same
non-termination behaviour — while only re-deriving from facts whose
annotation changed in the previous round.
"""

from __future__ import annotations

import random

import pytest

from repro.errors import DatalogError, DatalogNonTerminationError
from repro.relational.datalog import (
    EVALUATION_METHODS,
    Atom,
    Constant,
    Program,
    Rule,
    SkolemTerm,
    Variable,
    evaluate_program,
)
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, Polynomial
from repro.semirings.registry import standard_semirings
from repro.shredding import path_programs, shred_forest
from repro.uxquery.ast import Step
from repro.workloads import random_forest

V = Variable
C = Constant


REACHABILITY = Program(
    [
        Rule(Atom("Reach", [V("n")]), [Atom("E", [C("root"), V("n")])]),
        Rule(
            Atom("Reach", [V("n")]),
            [Atom("Reach", [V("p")]), Atom("E", [V("p"), V("n")])],
        ),
    ]
)


def _random_dag_edb(seed: int, size: int = 12) -> dict:
    """A random DAG rooted at ``"root"`` with small natural annotations."""
    rng = random.Random(seed)
    nodes = ["root"] + [f"n{i}" for i in range(size)]
    edges = {}
    for i, node in enumerate(nodes[1:], start=1):
        # Every node gets at least one parent earlier in the order (acyclic).
        for parent in rng.sample(nodes[:i], k=min(i, rng.randint(1, 3))):
            edges[(parent, node)] = rng.randint(1, 4)
    return {"E": edges}


class TestStrategyParity:
    def test_unknown_method_rejected(self):
        with pytest.raises(DatalogError, match="valid methods"):
            evaluate_program(REACHABILITY, {"E": {}}, NATURAL, method="bogus")
        assert set(EVALUATION_METHODS) == {"seminaive", "naive"}

    @pytest.mark.parametrize("seed", range(5))
    def test_random_dags_natural(self, seed):
        edb = _random_dag_edb(seed)
        naive = evaluate_program(REACHABILITY, edb, NATURAL, method="naive")
        seminaive = evaluate_program(REACHABILITY, edb, NATURAL, method="seminaive")
        assert seminaive == naive

    @pytest.mark.parametrize("seed", range(3))
    def test_random_dags_provenance(self, seed):
        rng = random.Random(seed)
        edb = {
            "E": {
                edge: Polynomial.variable(f"t{rng.randint(0, 5)}")
                for edge in _random_dag_edb(seed)["E"]
            }
        }
        naive = evaluate_program(REACHABILITY, edb, PROVENANCE, method="naive")
        seminaive = evaluate_program(REACHABILITY, edb, PROVENANCE, method="seminaive")
        assert seminaive == naive

    def test_every_registry_semiring_on_the_step_programs(self):
        """The XPath translation programs agree strategy-to-strategy for
        every registry semiring (the workload the pushdown layer runs)."""
        for semiring in standard_semirings():
            forest = random_forest(
                semiring,
                num_trees=2,
                depth=3,
                fanout=2,
                seed=7,
                annotation_fn=lambda rng: semiring.one,
            )
            facts = shred_forest(forest)
            for program, input_pred, _output in path_programs(
                [Step("descendant-or-self", "*"), Step("child", "c")]
            ):
                naive = evaluate_program(
                    program, {input_pred: facts}, semiring, method="naive"
                )
                seminaive = evaluate_program(
                    program, {input_pred: facts}, semiring, method="seminaive"
                )
                assert seminaive == naive, semiring.name
                break  # one step program per semiring keeps the test fast

    def test_skolem_heads(self):
        program = Program(
            [
                Rule(
                    Atom("Out", [SkolemTerm("f", [V("n")]), V("l")]),
                    [Atom("In", [V("n"), V("l")])],
                )
            ]
        )
        edb = {"In": {(1, "a"): 2, (2, "b"): 3}}
        assert evaluate_program(program, edb, NATURAL, method="seminaive") == (
            evaluate_program(program, edb, NATURAL, method="naive")
        )

    def test_multiple_rules_one_head(self):
        program = Program(
            [
                Rule(Atom("T", [V("x")]), [Atom("R", [V("x"), V("_")])]),
                Rule(Atom("T", [V("x")]), [Atom("S", [V("_"), V("x")])]),
            ]
        )
        edb = {"R": {("a", "p"): 2}, "S": {("q", "a"): 3, ("q", "b"): 1}}
        result = evaluate_program(program, edb, NATURAL)
        assert result["T"] == {("a",): 5, ("b",): 1}

    def test_edb_facts_feed_idb_predicate(self):
        """A predicate can have both EDB facts and derived facts."""
        program = Program([Rule(Atom("P", [V("x")]), [Atom("Q", [V("x")])])])
        edb = {"P": {("seed",): 2}, "Q": {("seed",): 3, ("new",): 1}}
        for method in EVALUATION_METHODS:
            result = evaluate_program(program, edb, NATURAL, method=method)
            assert result["P"] == {("seed",): 5, ("new",): 1}

    def test_empty_body_rules_are_derived(self):
        """A bodyless rule (constant head) has no atom for delta-driven
        discovery to trigger on; it must still be derived, as in naive."""
        program = Program(
            [
                Rule(Atom("P", [C(1)]), []),
                Rule(Atom("Q", [V("x"), C("seen")]), [Atom("P", [V("x")])]),
            ]
        )
        for edb in ({}, {"P": {(1,): 2}}):
            naive = evaluate_program(program, edb, NATURAL, method="naive")
            seminaive = evaluate_program(program, edb, NATURAL, method="seminaive")
            assert seminaive == naive
            assert seminaive["Q"] == {(1, "seen"): naive["P"][(1,)]}

    def test_cyclic_data_non_idempotent_raises(self):
        edb = {"E": {("root", "a"): 1, ("a", "root"): 1}}
        for method in EVALUATION_METHODS:
            with pytest.raises(DatalogNonTerminationError):
                evaluate_program(REACHABILITY, edb, NATURAL, method=method, max_iterations=50)

    def test_cyclic_data_idempotent_converges(self):
        edb = {"E": {("root", "a"): True, ("a", "b"): True, ("b", "a"): True}}
        for method in EVALUATION_METHODS:
            result = evaluate_program(REACHABILITY, edb, BOOLEAN, method=method)
            assert result["Reach"] == {("a",): True, ("b",): True}

    def test_annihilating_products_drop_facts(self):
        """A derivation whose product is zero contributes nothing (both paths)."""
        program = Program(
            [
                Rule(
                    Atom("T", [V("x")]),
                    [Atom("R", [V("x")]), Atom("S", [V("x")])],
                )
            ]
        )
        # Tropical: zero is +inf; a zero body fact annihilates the product.
        from repro.semirings import TROPICAL

        edb = {"R": {("a",): 1.0, ("b",): 2.0}, "S": {("a",): TROPICAL.zero, ("b",): 0.5}}
        for method in EVALUATION_METHODS:
            result = evaluate_program(program, edb, TROPICAL, method=method)
            assert ("a",) not in result["T"]
            assert result["T"][("b",)] == 2.5
