"""The semiring-annotated Datalog engine with Skolem functions."""

from __future__ import annotations

import pytest

from repro.errors import DatalogNonTerminationError, DatalogSafetyError
from repro.relational import (
    Atom,
    Constant,
    KRelation,
    Program,
    Rule,
    SkolemTerm,
    SkolemValue,
    Variable,
    evaluate_program,
    facts_from_relation,
    relation_from_facts,
)
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, Polynomial

POLY = Polynomial.parse
V = Variable
C = Constant


class TestRuleLanguage:
    def test_safety_check(self):
        with pytest.raises(DatalogSafetyError):
            Rule(Atom("P", [V("x"), V("y")]), [Atom("Q", [V("x")])])

    def test_skolem_terms_only_in_heads(self):
        with pytest.raises(DatalogSafetyError):
            Rule(Atom("P", [V("x")]), [Atom("Q", [SkolemTerm("f", [V("x")])])])

    def test_wildcards_do_not_bind(self):
        rule = Rule(Atom("P", [V("x")]), [Atom("Q", [V("x"), V("_")])])
        assert rule.head.predicate == "P"

    def test_rendering(self):
        rule = Rule(
            Atom("E2", [SkolemTerm("f", [V("p")]), V("l")]),
            [Atom("E", [V("p"), V("l")])],
        )
        assert str(rule) == "E2(f(p), l) :- E(p, l)"

    def test_skolem_values_are_injective(self):
        assert SkolemValue("f", (1,)) == SkolemValue("f", (1,))
        assert SkolemValue("f", (1,)) != SkolemValue("f", (2,))
        assert SkolemValue("f", (1,)) != SkolemValue("g", (1,))
        assert str(SkolemValue("f", (1, 2))) == "f(1, 2)"


class TestEvaluation:
    def test_non_recursive_join(self):
        program = Program(
            [
                Rule(
                    Atom("T", [V("x"), V("z")]),
                    [Atom("R", [V("x"), V("y")]), Atom("S", [V("y"), V("z")])],
                )
            ]
        )
        edb = {
            "R": {("a", "b"): 2},
            "S": {("b", "c"): 3, ("b", "d"): 5},
        }
        result = evaluate_program(program, edb, NATURAL)
        assert result["T"] == {("a", "c"): 6, ("a", "d"): 10}

    def test_multiple_derivations_add(self):
        program = Program(
            [
                Rule(Atom("T", [V("x")]), [Atom("R", [V("x"), V("_")])]),
            ]
        )
        edb = {"R": {("a", "p"): 2, ("a", "q"): 3}}
        result = evaluate_program(program, edb, NATURAL)
        assert result["T"] == {("a",): 5}

    def test_recursive_reachability_with_provenance(self):
        """Path annotations are products along edges, summed over all paths."""
        program = Program(
            [
                Rule(Atom("Reach", [V("n")]), [Atom("E", [C("root"), V("n")])]),
                Rule(
                    Atom("Reach", [V("n")]),
                    [Atom("Reach", [V("p")]), Atom("E", [V("p"), V("n")])],
                ),
            ]
        )
        x, y, z = (Polynomial.variable(t) for t in ("x", "y", "z"))
        edb = {
            "E": {
                ("root", "a"): x,
                ("a", "b"): y,
                ("root", "b"): z,
            }
        }
        result = evaluate_program(program, edb, PROVENANCE)
        assert result["Reach"][("a",)] == x
        assert result["Reach"][("b",)] == x * y + z

    def test_skolem_heads_invent_values(self):
        program = Program(
            [
                Rule(
                    Atom("Out", [SkolemTerm("f", [V("n")]), V("l")]),
                    [Atom("In", [V("n"), V("l")])],
                )
            ]
        )
        result = evaluate_program(program, {"In": {(1, "a"): 2}}, NATURAL)
        assert result["Out"] == {(SkolemValue("f", (1,)), "a"): 2}

    def test_cyclic_data_over_naturals_raises(self):
        program = Program(
            [
                Rule(Atom("Reach", [V("n")]), [Atom("E", [C("root"), V("n")])]),
                Rule(
                    Atom("Reach", [V("n")]),
                    [Atom("Reach", [V("p")]), Atom("E", [V("p"), V("n")])],
                ),
            ]
        )
        edb = {"E": {("root", "a"): 1, ("a", "a"): 1}}
        with pytest.raises(DatalogNonTerminationError):
            evaluate_program(program, edb, NATURAL, max_iterations=25)

    def test_cyclic_data_over_booleans_converges(self):
        program = Program(
            [
                Rule(Atom("Reach", [V("n")]), [Atom("E", [C("root"), V("n")])]),
                Rule(
                    Atom("Reach", [V("n")]),
                    [Atom("Reach", [V("p")]), Atom("E", [V("p"), V("n")])],
                ),
            ]
        )
        edb = {"E": {("root", "a"): True, ("a", "b"): True, ("b", "a"): True}}
        result = evaluate_program(program, edb, BOOLEAN)
        assert result["Reach"] == {("a",): True, ("b",): True}

    def test_zero_annotated_facts_are_ignored(self):
        program = Program([Rule(Atom("T", [V("x")]), [Atom("R", [V("x")])])])
        result = evaluate_program(program, {"R": {("a",): 0, ("b",): 2}}, NATURAL)
        assert result["T"] == {("b",): 2}

    def test_constants_in_bodies_filter(self):
        program = Program(
            [Rule(Atom("T", [V("x")]), [Atom("R", [C("a"), V("x")])])]
        )
        result = evaluate_program(program, {"R": {("a", "v"): 1, ("b", "w"): 1}}, NATURAL)
        assert result["T"] == {("v",): 1}

    def test_facts_relation_round_trip(self):
        relation = KRelation(NATURAL, ("A", "B"), [(("a", "b"), 2)])
        facts = facts_from_relation(relation)
        assert relation_from_facts(NATURAL, ("A", "B"), facts) == relation
