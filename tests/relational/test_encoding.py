"""The Figure 5 encoding of K-relations as UXML and of RA+ as K-UXQuery (Prop. 1)."""

from __future__ import annotations

import pytest

from repro.errors import RelationalError
from repro.relational import (
    AttributeSelection,
    KRelation,
    NaturalJoin,
    ProductExpr,
    Projection,
    RelationRef,
    RenameExpr,
    Selection,
    UnionExpr,
    algebra_to_uxquery,
    database_to_uxml,
    evaluate_algebra,
    forest_to_relation,
    relation_to_tree,
    schema_of,
    tree_to_relation,
)
from repro.semirings import NATURAL, PROVENANCE
from repro.uxquery import evaluate_query
from repro.workloads import random_database


class TestDataEncoding:
    def test_relation_round_trip(self):
        relation = KRelation(NATURAL, ("A", "B"), [(("a", "b"), 2), (("c", "d"), 3)])
        tree = relation_to_tree(NATURAL, "R", relation)
        assert tree.label == "R"
        assert tree_to_relation(tree, ("A", "B")) == relation

    def test_database_encoding_structure(self):
        from repro.paperdata import figure5_relations

        document = database_to_uxml(PROVENANCE, figure5_relations())
        (root,) = document
        assert root.label == "D"
        assert {child.label for child in root.child_trees()} == {"R", "S"}

    def test_decoding_rejects_malformed_tuples(self, nat_builder):
        b = nat_builder
        bad = b.forest(b.tree("t", b.tree("A", b.leaf("1"), b.leaf("2"))))
        with pytest.raises(RelationalError):
            forest_to_relation(bad, ("A",))
        missing = b.forest(b.tree("t", b.tree("B", b.leaf("1"))))
        with pytest.raises(RelationalError):
            forest_to_relation(missing, ("A",))

    def test_decoding_merges_equal_tuples(self, nat_builder):
        b = nat_builder
        encoded = b.forest(
            b.record("t", [("A", "a")]) @ 2,
            b.record("t", [("A", "a")]) @ 3,
        )
        relation = forest_to_relation(encoded, ("A",))
        assert relation.annotation(("a",)) == 5


class TestProposition1:
    """Translating RA+ into K-UXQuery commutes with the encoding."""

    def _check(self, algebra, database, schemas):
        expected = evaluate_algebra(algebra, database)
        document = database_to_uxml(database[next(iter(database))].semiring, database)
        query = algebra_to_uxquery(algebra, schemas)
        answer = evaluate_query(query, document.semiring, {"d": document})
        decoded = forest_to_relation(answer, schema_of(algebra, schemas))
        assert decoded == expected

    def test_figure5_view(self):
        from repro.paperdata import figure5_algebra, figure5_relations, figure5_schemas

        self._check(figure5_algebra(), figure5_relations(), figure5_schemas())

    def test_projection_and_selection(self):
        from repro.paperdata import figure5_relations, figure5_schemas

        algebra = Projection(Selection(RelationRef("R"), "B", "b"), ("A", "C"))
        self._check(algebra, figure5_relations(), figure5_schemas())

    def test_attribute_selection(self):
        db = {
            "R": KRelation(
                NATURAL, ("A", "B"), [(("x", "x"), 2), (("x", "y"), 3)]
            )
        }
        algebra = AttributeSelection(RelationRef("R"), "A", "B")
        self._check(algebra, db, {"R": ("A", "B")})

    def test_union_and_rename(self):
        db = {
            "R": KRelation(NATURAL, ("A", "B"), [(("x", "y"), 2)]),
            "S": KRelation(NATURAL, ("C", "B"), [(("x", "y"), 3)]),
        }
        algebra = UnionExpr(RelationRef("R"), RenameExpr(RelationRef("S"), {"C": "A"}))
        self._check(algebra, db, {"R": ("A", "B"), "S": ("C", "B")})

    def test_cartesian_product(self):
        db = {
            "R": KRelation(NATURAL, ("A",), [(("x",), 2)]),
            "S": KRelation(NATURAL, ("B",), [(("y",), 3), (("z",), 1)]),
        }
        algebra = ProductExpr(RelationRef("R"), RelationRef("S"))
        self._check(algebra, db, {"R": ("A",), "S": ("B",)})

    def test_join_on_random_databases(self):
        schemas = {"R": ("A", "B"), "S": ("B", "C")}
        for seed in range(3):
            db = random_database(NATURAL, schemas, rows_per_relation=6, domain_size=3, seed=seed)
            algebra = Projection(NaturalJoin(RelationRef("R"), RelationRef("S")), ("A", "C"))
            self._check(algebra, db, schemas)

    def test_random_databases_with_provenance(self):
        schemas = {"R": ("A", "B"), "S": ("B", "C")}
        db = random_database(PROVENANCE, schemas, rows_per_relation=4, domain_size=2, seed=7, tokens=True)
        algebra = Projection(
            NaturalJoin(Projection(RelationRef("R"), ("A", "B")), RelationRef("S")), ("A", "C")
        )
        self._check(algebra, db, schemas)
