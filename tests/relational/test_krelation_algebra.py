"""K-relations and the positive relational algebra of the PODS 2007 baseline."""

from __future__ import annotations

import pytest

from repro.errors import RelationalError, SchemaError
from repro.relational import (
    KRelation,
    NaturalJoin,
    Projection,
    RelationRef,
    RenameExpr,
    Selection,
    UnionExpr,
    evaluate_algebra,
    figure5_algebra_query,
    schema_of,
)
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, Polynomial, duplicate_elimination

POLY = Polynomial.parse


@pytest.fixture
def figure5_db():
    from repro.paperdata import figure5_relations

    return figure5_relations()


class TestKRelation:
    def test_construction_merges_duplicates(self):
        relation = KRelation(NATURAL, ("A",), [(("a",), 2), (("a",), 3)])
        assert relation.annotation(("a",)) == 5
        assert len(relation) == 1

    def test_zero_rows_dropped(self):
        relation = KRelation(NATURAL, ("A",), [(("a",), 0)])
        assert relation.is_empty()

    def test_schema_validation(self):
        with pytest.raises(SchemaError):
            KRelation(NATURAL, ("A", "A"), [])
        with pytest.raises(SchemaError):
            KRelation(NATURAL, ("A", "B"), [(("a",), 1)])

    def test_union_adds(self):
        left = KRelation(NATURAL, ("A",), [(("a",), 1)])
        right = KRelation(NATURAL, ("A",), [(("a",), 2), (("b",), 1)])
        merged = left.union(right)
        assert merged.annotation(("a",)) == 3
        with pytest.raises(SchemaError):
            left.union(KRelation(NATURAL, ("B",), []))

    def test_projection_adds_collapsing_tuples(self):
        relation = KRelation(NATURAL, ("A", "B"), [(("a", "x"), 2), (("a", "y"), 3)])
        projected = relation.project(["A"])
        assert projected.annotation(("a",)) == 5

    def test_selection(self):
        relation = KRelation(NATURAL, ("A", "B"), [(("a", "x"), 2), (("b", "x"), 3)])
        assert relation.select_eq("A", "a").annotation(("a", "x")) == 2
        assert relation.select(lambda row: row["B"] == "x") == relation
        assert relation.select_attr_eq("A", "B").is_empty()

    def test_join_multiplies(self):
        left = KRelation(NATURAL, ("A", "B"), [(("a", "k"), 2)])
        right = KRelation(NATURAL, ("B", "C"), [(("k", "c"), 3), (("z", "c"), 7)])
        joined = left.join(right)
        assert joined.attributes == ("A", "B", "C")
        assert joined.annotation(("a", "k", "c")) == 6
        assert len(joined) == 1

    def test_product_requires_disjoint_schemas(self):
        left = KRelation(NATURAL, ("A",), [(("a",), 2)])
        right = KRelation(NATURAL, ("B",), [(("b",), 3)])
        assert left.product(right).annotation(("a", "b")) == 6
        with pytest.raises(SchemaError):
            left.product(left)

    def test_rename(self):
        relation = KRelation(NATURAL, ("A", "B"), [(("a", "b"), 1)])
        renamed = relation.rename({"A": "X"})
        assert renamed.attributes == ("X", "B")

    def test_map_annotations(self):
        relation = KRelation(NATURAL, ("A",), [(("a",), 2), (("b",), 0)])
        as_bool = relation.map_annotations(duplicate_elimination(), BOOLEAN)
        assert as_bool.annotation(("a",)) is True
        assert ("b",) not in as_bool

    def test_to_table_rendering(self):
        relation = KRelation(NATURAL, ("A",), [(("a",), 2)])
        table = relation.to_table()
        assert "A" in table and "annotation" in table and "a | 2" in table

    def test_immutability_and_hash(self):
        relation = KRelation(NATURAL, ("A",), [(("a",), 2)])
        with pytest.raises(AttributeError):
            relation.extra = 1  # type: ignore[attr-defined]
        assert hash(relation) == hash(KRelation(NATURAL, ("A",), [(("a",), 2)]))


class TestAlgebra:
    def test_figure5_query_matches_paper(self, figure5_db):
        from repro.paperdata import figure5_expected_q

        result = evaluate_algebra(figure5_algebra_query(), figure5_db)
        assert result == figure5_expected_q()

    def test_annotation_reading_of_figure5(self, figure5_db):
        """The (d, c) tuple can be derived two ways: joining two R tuples or R with S."""
        result = evaluate_algebra(figure5_algebra_query(), figure5_db)
        assert result.annotation(("d", "c")) == POLY("x1*x2 + x2*x4")

    def test_schema_inference(self, figure5_db):
        from repro.paperdata import figure5_schemas

        assert schema_of(figure5_algebra_query(), figure5_schemas()) == ("A", "C")
        join = NaturalJoin(RelationRef("R"), RelationRef("S"))
        assert schema_of(join, figure5_schemas()) == ("A", "B", "C")

    def test_selection_and_rename_nodes(self, figure5_db):
        query = Projection(Selection(RelationRef("R"), "B", "b"), ("A",))
        result = evaluate_algebra(query, figure5_db)
        assert result.annotation(("a",)) == POLY("x1")
        renamed = evaluate_algebra(RenameExpr(RelationRef("S"), {"B": "X"}), figure5_db)
        assert renamed.attributes == ("X", "C")

    def test_union_schema_mismatch(self, figure5_db):
        from repro.paperdata import figure5_schemas

        query = UnionExpr(RelationRef("R"), RelationRef("S"))
        with pytest.raises(SchemaError):
            evaluate_algebra(query, figure5_db)
        with pytest.raises(SchemaError):
            schema_of(query, figure5_schemas())

    def test_unknown_relation(self):
        with pytest.raises(RelationalError):
            evaluate_algebra(RelationRef("missing"), {})

    def test_boolean_specialization_of_figure5(self, figure5_db):
        """Evaluating in B (via the homomorphism x_i -> true) marks all six tuples present."""
        from repro.semirings import polynomial_valuation

        annotated = evaluate_algebra(figure5_algebra_query(), figure5_db)
        valuation = {f"x{i}": True for i in range(1, 6)}
        as_bool = annotated.map_annotations(polynomial_valuation(valuation, BOOLEAN), BOOLEAN)
        assert len(as_bool) == 6
        assert all(annotation is True for _, annotation in as_bool.items())

    def test_bag_specialization_counts_derivations(self, figure5_db):
        from repro.semirings import polynomial_valuation

        annotated = evaluate_algebra(figure5_algebra_query(), figure5_db)
        valuation = {f"x{i}": 1 for i in range(1, 6)}
        as_bag = annotated.map_annotations(polynomial_valuation(valuation, NATURAL), NATURAL)
        assert as_bag.annotation(("a", "c")) == 2  # two derivations
        assert as_bag.annotation(("f", "e")) == 1
