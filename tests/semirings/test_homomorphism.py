"""Semiring homomorphisms and the standard specializations of N[X]."""

from __future__ import annotations

import pytest

from repro.errors import HomomorphismError
from repro.semirings import (
    BOOLEAN,
    CLEARANCE,
    LINEAGE,
    NATURAL,
    POSBOOL,
    PROVENANCE,
    TROPICAL,
    VITERBI,
    WHY,
    BoolExpr,
    Lineage,
    Polynomial,
    SemiringHomomorphism,
    WhyProvenance,
    duplicate_elimination,
    natural_embedding,
    polynomial_to_lineage,
    polynomial_to_posbool,
    polynomial_to_why,
    polynomial_valuation,
    posbool_valuation,
    variables,
    why_to_posbool,
)


class TestValuations:
    def test_polynomial_valuation_into_naturals(self):
        x, y = variables("x", "y")
        hom = polynomial_valuation({"x": 2, "y": 3}, NATURAL)
        assert hom(x * y + x) == 8
        assert hom(PROVENANCE.zero) == 0
        assert hom(PROVENANCE.one) == 1

    def test_polynomial_valuation_into_booleans(self):
        x, y = variables("x", "y")
        hom = polynomial_valuation({"x": True, "y": False}, BOOLEAN)
        assert hom(x * y) is False
        assert hom(x + y) is True

    def test_polynomial_valuation_into_clearances(self):
        """The Figure 7 valuation w1 := C, x2 := S, y5 := T."""
        w1, x2, y5 = variables("w1", "x2", "y5")
        hom = polynomial_valuation({"w1": "C", "x2": "S", "y5": "T"}, CLEARANCE)
        assert hom(w1 * y5 + w1 * w1) == "C"
        assert hom(w1 * w1 * x2) == "S"
        assert hom(w1 * y5) == "T"

    def test_polynomial_valuation_checks_elements(self):
        from repro.errors import AnnotationError

        with pytest.raises(AnnotationError):
            polynomial_valuation({"x": "not-a-number"}, NATURAL)

    def test_valuation_homomorphism_laws_hold(self):
        hom = polynomial_valuation({"x": 2, "y": 0, "z": 5, "w": 1}, NATURAL)
        assert hom.violations() == []

    def test_posbool_valuation(self):
        x, y = BoolExpr.variable("x"), BoolExpr.variable("y")
        hom = posbool_valuation({"x": True, "y": False})
        assert hom(x | y) is True
        assert hom(x & y) is False
        assert hom.violations([x, y, x | y, x & y]) == []


class TestProvenanceHierarchy:
    def test_polynomial_to_posbool(self):
        x, y = variables("x", "y")
        hom = polynomial_to_posbool()
        assert hom(2 * (x * x * y) + x) == BoolExpr.variable("x")
        assert hom.violations() == []

    def test_polynomial_to_why(self):
        x, y = variables("x", "y")
        hom = polynomial_to_why()
        result = hom(x * y + x)
        assert result == WhyProvenance([["x", "y"], ["x"]])
        assert hom.violations() == []

    def test_polynomial_to_lineage(self):
        x, y = variables("x", "y")
        hom = polynomial_to_lineage()
        assert hom(x * y + x) == Lineage(["x", "y"])
        assert hom(PROVENANCE.zero) == Lineage.absent()
        assert hom.violations() == []

    def test_why_to_posbool(self):
        hom = why_to_posbool()
        value = WhyProvenance([["x"], ["x", "y"]])
        assert hom(value) == BoolExpr.variable("x")
        assert hom.violations() == []

    def test_hierarchy_composes(self):
        x, y = variables("x", "y")
        via_why = why_to_posbool().compose(polynomial_to_why())
        direct = polynomial_to_posbool()
        for poly in [x, x * y, x + y, 3 * (x * x) + y]:
            assert via_why(poly) == direct(poly)


class TestOtherHomomorphisms:
    def test_duplicate_elimination(self):
        dagger = duplicate_elimination()
        assert dagger(0) is False
        assert dagger(5) is True
        assert dagger.violations([0, 1, 2, 3]) == []

    @pytest.mark.parametrize(
        "target", [BOOLEAN, NATURAL, PROVENANCE, POSBOOL, CLEARANCE, TROPICAL, VITERBI, WHY, LINEAGE],
        ids=lambda s: s.name,
    )
    def test_natural_embedding_is_a_homomorphism(self, target):
        hom = natural_embedding(target)
        assert hom.violations([0, 1, 2, 3]) == []

    def test_composition_checks_signatures(self):
        to_bool = duplicate_elimination()
        to_nat = natural_embedding(NATURAL)
        with pytest.raises(HomomorphismError):
            to_nat.compose(to_bool)

    def test_check_detects_non_homomorphisms(self):
        bogus = SemiringHomomorphism(NATURAL, NATURAL, lambda n: n + 1, name="bogus")
        assert bogus.violations([0, 1, 2]) != []

    def test_universality_factoring(self):
        """Evaluating in K directly equals factoring through N[X] (universality)."""
        x, y, z = variables("x", "y", "z")
        poly = (x + y) * z + x * x
        for target, valuation in [
            (NATURAL, {"x": 2, "y": 1, "z": 3}),
            (BOOLEAN, {"x": True, "y": False, "z": True}),
            (TROPICAL, {"x": 1.0, "y": 2.0, "z": 0.5}),
            (CLEARANCE, {"x": "C", "y": "T", "z": "S"}),
        ]:
            hom = polynomial_valuation(valuation, target)
            direct = target.add(
                target.mul(target.add(valuation["x"], valuation["y"]), valuation["z"]),
                target.mul(valuation["x"], valuation["x"]),
            )
            assert target.eq(hom(poly), direct)


class TestRegistry:
    def test_lookup_by_name_and_alias(self):
        from repro.semirings import available_semirings, get_semiring

        assert get_semiring("boolean") is BOOLEAN
        assert get_semiring("B") is BOOLEAN
        assert get_semiring("N[X]") is PROVENANCE
        assert get_semiring("bag") is NATURAL
        assert "clearance" in available_semirings()

    def test_unknown_semiring(self):
        from repro.errors import SemiringError
        from repro.semirings import get_semiring

        with pytest.raises(SemiringError):
            get_semiring("does-not-exist")

    def test_register_custom(self):
        from repro.semirings import get_semiring, register_semiring
        from repro.errors import SemiringError

        register_semiring("test-custom-boolean", lambda: BOOLEAN)
        assert get_semiring("test-custom-boolean") is BOOLEAN
        with pytest.raises(SemiringError):
            register_semiring("test-custom-boolean", lambda: BOOLEAN)

    def test_standard_semirings_iterates(self):
        from repro.semirings import standard_semirings

        names = [semiring.name for semiring in standard_semirings()]
        assert "provenance-polynomials" in names
        assert len(names) >= 10


class TestTropicalFamily:
    def test_tropical_models_minimal_cost(self):
        assert TROPICAL.add(3.0, 5.0) == 3.0
        assert TROPICAL.mul(3.0, 5.0) == 8.0
        assert TROPICAL.zero == float("inf")
        assert TROPICAL.one == 0.0
        assert TROPICAL.parse_element("inf") == float("inf")
        assert TROPICAL.parse_element("2.5") == 2.5

    def test_viterbi_models_best_confidence(self):
        assert VITERBI.add(0.3, 0.8) == 0.8
        assert VITERBI.mul(0.5, 0.5) == 0.25
        with pytest.raises(ValueError):
            VITERBI.parse_element("1.5")

    def test_fuzzy_is_a_lattice(self):
        from repro.semirings import FUZZY

        assert FUZZY.add(0.3, 0.8) == 0.8
        assert FUZZY.mul(0.3, 0.8) == 0.3
