"""Provenance polynomials: arithmetic, canonical forms, valuation, parsing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, TROPICAL
from repro.semirings.polynomial import Monomial, Polynomial, variable, variables


class TestMonomial:
    def test_unit_monomial(self):
        unit = Monomial()
        assert unit.is_unit()
        assert unit.degree == 0
        assert str(unit) == "1"

    def test_multiplication_merges_exponents(self):
        left = Monomial({"x": 1, "y": 2})
        right = Monomial({"x": 3})
        assert (left * right).powers == {"x": 4, "y": 2}

    def test_power(self):
        mono = Monomial({"x": 2, "y": 1})
        assert (mono ** 3).powers == {"x": 6, "y": 3}
        assert (mono ** 0).is_unit()

    def test_zero_exponents_dropped(self):
        assert Monomial({"x": 0, "y": 1}).powers == {"y": 1}

    def test_negative_exponent_rejected(self):
        with pytest.raises(ValueError):
            Monomial({"x": -1})

    def test_str_rendering(self):
        assert str(Monomial({"x": 1})) == "x"
        assert str(Monomial({"x": 2, "a": 1})) == "a*x^2"

    def test_evaluate_in_natural_semiring(self):
        mono = Monomial({"x": 2, "y": 1})
        assert mono.evaluate({"x": 3, "y": 5}, NATURAL) == 45

    def test_rename(self):
        mono = Monomial({"x": 2, "y": 1})
        assert mono.rename({"x": "z"}).powers == {"z": 2, "y": 1}

    def test_rename_collision_adds_exponents(self):
        mono = Monomial({"x": 2, "y": 1})
        assert mono.rename({"x": "y"}).powers == {"y": 3}

    def test_equality_and_hash(self):
        assert Monomial({"x": 1, "y": 2}) == Monomial({"y": 2, "x": 1})
        assert hash(Monomial({"x": 1})) == hash(Monomial({"x": 1}))


class TestPolynomialArithmetic:
    def test_zero_and_one(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial.one().is_one()
        assert str(Polynomial.zero()) == "0"
        assert str(Polynomial.one()) == "1"

    def test_addition_collects_like_terms(self):
        x = variable("x")
        assert str(x + x) == "2*x"

    def test_multiplication_distributes(self):
        x, y = variables("x", "y")
        assert (x + y) * (x + y) == x * x + 2 * (x * y) + y * y

    def test_scalar_multiplication(self):
        x = variable("x")
        assert 3 * x == x + x + x
        assert x.scale(0).is_zero()

    def test_power(self):
        x, y = variables("x", "y")
        assert (x + y) ** 2 == x * x + 2 * x * y + y * y
        assert (x ** 0).is_one()

    def test_constant(self):
        assert Polynomial.constant(0).is_zero()
        assert Polynomial.constant(2) == Polynomial.one() + Polynomial.one()

    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.constant(-1)

    def test_degree_and_terms(self):
        x, y = variables("x", "y")
        poly = x * x * y + y + Polynomial.constant(3)
        assert poly.degree == 3
        assert poly.num_terms == 3
        assert poly.variables == frozenset({"x", "y"})

    def test_coefficient_lookup(self):
        x, y = variables("x", "y")
        poly = 2 * (x * y) + y
        assert poly.coefficient(Monomial({"x": 1, "y": 1})) == 2
        assert poly.coefficient(Monomial({"x": 5})) == 0

    def test_str_is_canonical(self):
        x, y = variables("x", "y")
        assert str(x * y + 2 * x) == "x*y + 2*x"

    def test_hash_consistent_with_equality(self):
        x, y = variables("x", "y")
        assert hash(x + y) == hash(y + x)
        assert x + y == y + x


class TestPolynomialEvaluation:
    def test_evaluate_into_naturals(self):
        x, y = variables("x", "y")
        poly = x * x + 2 * y
        assert poly.evaluate({"x": 3, "y": 5}, NATURAL) == 19
        assert poly.evaluate_int({"x": 3, "y": 5}) == 19

    def test_evaluate_into_booleans(self):
        x, y = variables("x", "y")
        poly = x * y + x
        assert poly.evaluate({"x": True, "y": False}, BOOLEAN) is True
        assert poly.evaluate({"x": False, "y": True}, BOOLEAN) is False

    def test_evaluate_into_tropical(self):
        x, y = variables("x", "y")
        poly = x * y + y  # min(x + y, y) in the tropical reading
        assert poly.evaluate({"x": 2.0, "y": 3.0}, TROPICAL) == 3.0

    def test_missing_token_raises(self):
        from repro.errors import SemiringError

        with pytest.raises(SemiringError):
            variable("x").evaluate({}, NATURAL)

    def test_rename_tokens(self):
        x, y = variables("x", "y")
        assert (x * y + x).rename({"x": "a"}) == variable("a") * y + variable("a")


class TestPolynomialParse:
    @pytest.mark.parametrize(
        "text",
        ["x1", "x1*y1 + x2*y2", "2*x^2 + 3", "x1^2 + x1*x4", "w1^2*x3^2*y2^2*z4^2", "7"],
    )
    def test_parse_round_trips_through_str(self, text):
        parsed = Polynomial.parse(text)
        assert Polynomial.parse(str(parsed)) == parsed

    def test_parse_matches_construction(self):
        x1, x4 = variables("x1", "x4")
        assert Polynomial.parse("x1^2 + x1*x4") == x1 * x1 + x1 * x4

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            Polynomial.parse("x1 + + x2")
        with pytest.raises(ValueError):
            Polynomial.parse("")

    def test_size_measure(self):
        x, y = variables("x", "y")
        assert Polynomial.zero().size() == 1
        assert x.size() == 2  # coefficient symbol + one variable occurrence
        assert (x * y + x).size() == 6


# ---------------------------------------------------------------------------
# Property-based tests: N[X] is a commutative semiring and valuation is a hom
# ---------------------------------------------------------------------------
_tokens = st.sampled_from(["x", "y", "z", "w"])
_monomials = st.dictionaries(_tokens, st.integers(min_value=1, max_value=3), max_size=3).map(
    Monomial
)
_polynomials = st.dictionaries(_monomials, st.integers(min_value=1, max_value=4), max_size=4).map(
    Polynomial
)


@settings(max_examples=60, deadline=None)
@given(_polynomials, _polynomials, _polynomials)
def test_polynomial_semiring_laws(p, q, r):
    assert (p + q) + r == p + (q + r)
    assert p + q == q + p
    assert (p * q) * r == p * (q * r)
    assert p * q == q * p
    assert p * (q + r) == p * q + p * r
    assert p + Polynomial.zero() == p
    assert p * Polynomial.one() == p
    assert (p * Polynomial.zero()).is_zero()


@settings(max_examples=60, deadline=None)
@given(
    _polynomials,
    _polynomials,
    st.fixed_dictionaries(
        {"x": st.integers(0, 4), "y": st.integers(0, 4), "z": st.integers(0, 4), "w": st.integers(0, 4)}
    ),
)
def test_valuation_is_a_homomorphism(p, q, valuation):
    assert (p + q).evaluate_int(valuation) == p.evaluate_int(valuation) + q.evaluate_int(valuation)
    assert (p * q).evaluate_int(valuation) == p.evaluate_int(valuation) * q.evaluate_int(valuation)


def test_provenance_semiring_wraps_polynomials():
    x = variable("x")
    assert PROVENANCE.add(x, x) == 2 * x
    assert PROVENANCE.mul(x, PROVENANCE.one) == x
    assert PROVENANCE.from_int(3) == Polynomial.constant(3)
    assert PROVENANCE.parse_element("x*y + 1") == x * variable("y") + Polynomial.one()
