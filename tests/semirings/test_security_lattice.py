"""Clearance, lattice and product semirings."""

from __future__ import annotations

import pytest

from repro.errors import AnnotationError
from repro.semirings import (
    BOOLEAN,
    CLEARANCE,
    NATURAL,
    ClearanceSemiring,
    DivisorLatticeSemiring,
    ProductSemiring,
    SubsetLatticeSemiring,
)


class TestClearanceSemiring:
    def test_paper_ordering(self):
        assert CLEARANCE.levels == ("P", "C", "S", "T")
        assert CLEARANCE.one == "P"
        assert CLEARANCE.zero == "0"

    def test_add_is_min_clearance(self):
        assert CLEARANCE.add("C", "T") == "C"
        assert CLEARANCE.add("S", "P") == "P"
        assert CLEARANCE.add("T", "0") == "T"

    def test_mul_is_max_clearance(self):
        assert CLEARANCE.mul("C", "T") == "T"
        assert CLEARANCE.mul("P", "P") == "P"
        assert CLEARANCE.mul("S", "0") == "0"

    def test_figure7_polynomial_identities(self):
        """The Figure 7 calculations: C*T + C^2 = C, C^2 * S = S, etc."""
        C, S, T = "C", "S", "T"
        mul, add = CLEARANCE.mul, CLEARANCE.add
        assert add(mul(C, T), mul(C, C)) == C
        assert mul(mul(C, C), S) == S
        assert add(mul(mul(C, S), T), mul(mul(C, C), S)) == S
        assert mul(C, T) == T
        assert mul(C, C) == C

    def test_accessible(self):
        assert CLEARANCE.accessible("C", "S")
        assert not CLEARANCE.accessible("T", "S")
        assert not CLEARANCE.accessible("0", "T")
        assert CLEARANCE.accessible("P", "P")

    def test_rank_and_comparisons(self):
        assert CLEARANCE.rank("P") == 0
        assert CLEARANCE.more_public("S", "C") == "C"
        assert CLEARANCE.more_secret("S", "C") == "S"
        with pytest.raises(AnnotationError):
            CLEARANCE.rank("X")

    def test_parse_element(self):
        assert CLEARANCE.parse_element(" T ") == "T"
        with pytest.raises(ValueError):
            CLEARANCE.parse_element("Q")

    def test_custom_levels(self):
        custom = ClearanceSemiring(("low", "high"), absent="void", name="two-level")
        assert custom.one == "low"
        assert custom.zero == "void"
        assert custom.add("low", "high") == "low"
        assert custom.mul("low", "high") == "high"

    def test_invalid_constructions(self):
        with pytest.raises(AnnotationError):
            ClearanceSemiring(())
        with pytest.raises(AnnotationError):
            ClearanceSemiring(("P", "P"))
        with pytest.raises(AnnotationError):
            ClearanceSemiring(("P", "C"), absent="C")


class TestSubsetLattice:
    def test_bounds(self):
        lattice = SubsetLatticeSemiring({"a", "b"})
        assert lattice.zero == frozenset()
        assert lattice.one == frozenset({"a", "b"})

    def test_operations(self):
        lattice = SubsetLatticeSemiring({"a", "b", "c"})
        left, right = frozenset({"a"}), frozenset({"a", "b"})
        assert lattice.add(left, right) == frozenset({"a", "b"})
        assert lattice.mul(left, right) == frozenset({"a"})
        assert lattice.leq(left, right)
        assert not lattice.leq(right, left)

    def test_membership_validation(self):
        lattice = SubsetLatticeSemiring({"a", "b"})
        assert lattice.is_valid(frozenset({"a"}))
        assert not lattice.is_valid(frozenset({"z"}))
        assert not lattice.is_valid({"a"})  # must be a frozenset

    def test_parse_and_render(self):
        lattice = SubsetLatticeSemiring({"a", "b"})
        assert lattice.parse_element("{a, b}") == frozenset({"a", "b"})
        assert lattice.parse_element("{}") == frozenset()
        assert lattice.repr_element(frozenset({"b", "a"})) == "{a,b}"
        with pytest.raises(ValueError):
            lattice.parse_element("{z}")

    def test_empty_universe_rejected(self):
        with pytest.raises(AnnotationError):
            SubsetLatticeSemiring([])


class TestDivisorLattice:
    def test_divisors_of_30(self):
        lattice = DivisorLatticeSemiring(30)
        assert lattice.divisors == (1, 2, 3, 5, 6, 10, 15, 30)
        assert lattice.zero == 1
        assert lattice.one == 30

    def test_lcm_gcd(self):
        lattice = DivisorLatticeSemiring(30)
        assert lattice.add(6, 10) == 30
        assert lattice.mul(6, 10) == 2

    def test_square_free_required(self):
        with pytest.raises(AnnotationError):
            DivisorLatticeSemiring(12)

    def test_parse(self):
        lattice = DivisorLatticeSemiring(30)
        assert lattice.parse_element("15") == 15
        with pytest.raises(ValueError):
            lattice.parse_element("4")


class TestProductSemiring:
    def test_componentwise_operations(self):
        product = ProductSemiring(BOOLEAN, NATURAL)
        assert product.zero == (False, 0)
        assert product.one == (True, 1)
        assert product.add((True, 2), (False, 3)) == (True, 5)
        assert product.mul((True, 2), (True, 3)) == (True, 6)

    def test_validation(self):
        product = ProductSemiring(BOOLEAN, NATURAL)
        assert product.is_valid((True, 3))
        assert not product.is_valid((True,))
        assert not product.is_valid((1, True))

    def test_project_and_inject(self):
        product = ProductSemiring(BOOLEAN, NATURAL)
        value = product.inject([True, 4])
        assert product.project(value, 0) is True
        assert product.project(value, 1) == 4

    def test_empty_product_rejected(self):
        with pytest.raises(AnnotationError):
            ProductSemiring()

    def test_idempotence_flags(self):
        assert ProductSemiring(BOOLEAN, BOOLEAN).idempotent_add
        assert not ProductSemiring(BOOLEAN, NATURAL).idempotent_add
