"""Commutative-semiring axioms hold for every shipped semiring."""

from __future__ import annotations

import pytest

from repro.semirings import check_semiring_axioms

from tests.conftest import ALL_SEMIRINGS


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_axioms_on_samples(semiring):
    failures = check_semiring_axioms(semiring, semiring.sample_elements())
    assert failures == []


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_zero_and_one_are_valid_and_distinct_when_nontrivial(semiring):
    assert semiring.is_valid(semiring.zero)
    assert semiring.is_valid(semiring.one)
    assert not semiring.eq(semiring.zero, semiring.one)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_sum_and_product_fold_correctly(semiring):
    samples = [value for value in semiring.sample_elements()][:3]
    total = semiring.zero
    prod = semiring.one
    for value in samples:
        total = semiring.add(total, value)
        prod = semiring.mul(prod, value)
    assert semiring.eq(semiring.sum(samples), total)
    assert semiring.eq(semiring.product(samples), prod)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_from_int_is_iterated_addition(semiring):
    three = semiring.add(semiring.add(semiring.one, semiring.one), semiring.one)
    assert semiring.eq(semiring.from_int(3), three)
    assert semiring.eq(semiring.from_int(0), semiring.zero)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_power_is_iterated_multiplication(semiring):
    for value in semiring.sample_elements()[:3]:
        squared = semiring.mul(value, value)
        assert semiring.eq(semiring.power(value, 2), squared)
        assert semiring.eq(semiring.power(value, 0), semiring.one)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_idempotence_flags_are_accurate(semiring):
    for value in semiring.sample_elements():
        if semiring.idempotent_add:
            assert semiring.eq(semiring.add(value, value), value)
        if semiring.idempotent_mul:
            assert semiring.eq(semiring.mul(value, value), value)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_coerce_rejects_garbage(semiring):
    from repro.errors import AnnotationError

    class Garbage:
        pass

    with pytest.raises(AnnotationError):
        semiring.coerce(Garbage())


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_repr_element_is_a_string(semiring):
    for value in semiring.sample_elements():
        assert isinstance(semiring.repr_element(value), str)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=lambda s: s.name)
def test_sample_elements_are_hashable_and_valid(semiring):
    for value in semiring.sample_elements():
        assert semiring.is_valid(value)
        hash(semiring.normalize(value))
