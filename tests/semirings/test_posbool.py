"""Positive Boolean expressions: canonical form, logic, parsing."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semirings import POSBOOL, BoolExpr


class TestBoolExprBasics:
    def test_true_false_constants(self):
        assert BoolExpr.false().is_false()
        assert BoolExpr.true().is_true()
        assert str(BoolExpr.false()) == "false"
        assert str(BoolExpr.true()) == "true"

    def test_variable(self):
        x = BoolExpr.variable("x")
        assert x.variables == frozenset({"x"})
        assert str(x) == "x"

    def test_or_and(self):
        x, y = BoolExpr.variable("x"), BoolExpr.variable("y")
        assert str(x | y) == "x + y"
        assert str(x & y) == "x*y"

    def test_absorption_is_canonicalized(self):
        x, y = BoolExpr.variable("x"), BoolExpr.variable("y")
        assert (x | (x & y)) == x
        assert (x & (x | y)) == x

    def test_true_absorbs_or(self):
        x = BoolExpr.variable("x")
        assert (BoolExpr.true() | x) == BoolExpr.true()
        assert (BoolExpr.false() | x) == x

    def test_and_with_constants(self):
        x = BoolExpr.variable("x")
        assert (BoolExpr.true() & x) == x
        assert (BoolExpr.false() & x) == BoolExpr.false()

    def test_conjunction_of(self):
        expr = BoolExpr.conjunction_of(["a", "b"])
        assert expr == BoolExpr.variable("a") & BoolExpr.variable("b")

    def test_evaluate(self):
        x, y, z = (BoolExpr.variable(v) for v in "xyz")
        expr = (x & y) | z
        assert expr.evaluate({"x": True, "y": True, "z": False})
        assert expr.evaluate({"x": False, "y": False, "z": True})
        assert not expr.evaluate({"x": True, "y": False, "z": False})

    def test_missing_variables_default_to_false(self):
        assert not BoolExpr.variable("x").evaluate({})


class TestPosBoolSemiring:
    def test_parse_element(self):
        x, y, z = (BoolExpr.variable(v) for v in ("x1", "y1", "y2"))
        assert POSBOOL.parse_element("x1*y1 + y2") == (x & y) | z
        assert POSBOOL.parse_element("true") == BoolExpr.true()
        assert POSBOOL.parse_element("false") == BoolExpr.false()

    def test_parse_rejects_empty_conjunct(self):
        with pytest.raises(ValueError):
            POSBOOL.parse_element("x + ")

    def test_equivalent_expressions_are_equal(self):
        x, y = BoolExpr.variable("x"), BoolExpr.variable("y")
        left = (x | y) & (x | y)
        assert left == (x | y)

    def test_canonical_form_matches_truth_table(self):
        """Structural equality coincides with logical equivalence on 3 variables."""
        x, y, z = (BoolExpr.variable(v) for v in "xyz")
        pairs = [
            ((x & y) | (x & z), x & (y | z)),
            ((x | y) & (y | x), x | y),
            ((x & y) | y, y),
        ]
        for left, right in pairs:
            assert left == right
            for values in itertools.product((False, True), repeat=3):
                assignment = dict(zip("xyz", values))
                assert left.evaluate(assignment) == right.evaluate(assignment)


# ---------------------------------------------------------------------------
# Property-based: canonical equality == logical equivalence
# ---------------------------------------------------------------------------
_names = ("a", "b", "c")
_variables = st.sampled_from(_names).map(BoolExpr.variable)
_exprs = st.recursive(
    _variables | st.just(BoolExpr.true()) | st.just(BoolExpr.false()),
    lambda children: st.tuples(children, children).map(lambda pair: pair[0] | pair[1])
    | st.tuples(children, children).map(lambda pair: pair[0] & pair[1]),
    max_leaves=6,
)


@settings(max_examples=80, deadline=None)
@given(_exprs, _exprs)
def test_structural_equality_iff_logical_equivalence(left, right):
    logically_equal = all(
        left.evaluate(dict(zip(_names, values))) == right.evaluate(dict(zip(_names, values)))
        for values in itertools.product((False, True), repeat=len(_names))
    )
    assert (left == right) == logically_equal


@settings(max_examples=60, deadline=None)
@given(_exprs, _exprs, _exprs)
def test_posbool_lattice_laws(a, b, c):
    assert (a | b) | c == a | (b | c)
    assert (a & b) & c == a & (b & c)
    assert a | b == b | a
    assert a & b == b & a
    assert a & (b | c) == (a & b) | (a & c)
    assert a | (b & c) == (a | b) & (a | c)
    assert (a | a) == a
    assert (a & a) == a
