"""Why-provenance and lineage semirings."""

from __future__ import annotations

from repro.semirings import LINEAGE, WHY, Lineage, WhyProvenance


class TestWhyProvenance:
    def test_constants(self):
        assert WhyProvenance.absent().witnesses == frozenset()
        assert WhyProvenance.unconditional().witnesses == frozenset({frozenset()})

    def test_token(self):
        assert WhyProvenance.token("x").tokens == frozenset({"x"})

    def test_union_keeps_all_witnesses(self):
        x, y = WhyProvenance.token("x"), WhyProvenance.token("y")
        combined = x | y
        assert combined.witnesses == frozenset({frozenset({"x"}), frozenset({"y"})})

    def test_product_combines_pairwise(self):
        x, y = WhyProvenance.token("x"), WhyProvenance.token("y")
        assert (x & y).witnesses == frozenset({frozenset({"x", "y"})})

    def test_no_absorption_unlike_posbool(self):
        x = WhyProvenance.token("x")
        xy = WhyProvenance([["x", "y"]])
        # Why keeps the non-minimal witness {x, y} alongside {x}.
        assert (x | xy).witnesses == frozenset({frozenset({"x"}), frozenset({"x", "y"})})

    def test_semiring_constants(self):
        assert WHY.zero == WhyProvenance.absent()
        assert WHY.one == WhyProvenance.unconditional()

    def test_string_rendering_is_deterministic(self):
        value = WhyProvenance([["b", "a"], ["c"]])
        assert str(value) == "{{c}, {a,b}}"


class TestLineage:
    def test_constants(self):
        assert Lineage.absent().is_absent
        assert Lineage.empty().tokens == frozenset()

    def test_merge_and_combine(self):
        x, y = Lineage.token("x"), Lineage.token("y")
        assert x.merge(y).tokens == frozenset({"x", "y"})
        assert x.combine(y).tokens == frozenset({"x", "y"})

    def test_absent_is_additive_identity(self):
        x = Lineage.token("x")
        assert LINEAGE.add(LINEAGE.zero, x) == x
        assert LINEAGE.add(x, LINEAGE.zero) == x

    def test_absent_is_multiplicative_annihilator(self):
        x = Lineage.token("x")
        assert LINEAGE.mul(LINEAGE.zero, x) == LINEAGE.zero
        assert LINEAGE.mul(x, LINEAGE.zero) == LINEAGE.zero

    def test_empty_is_multiplicative_identity(self):
        x = Lineage.token("x")
        assert LINEAGE.mul(LINEAGE.one, x) == x

    def test_distributivity_with_absent(self):
        x, y = Lineage.token("x"), Lineage.token("y")
        left = LINEAGE.mul(x, LINEAGE.add(LINEAGE.zero, y))
        right = LINEAGE.add(LINEAGE.mul(x, LINEAGE.zero), LINEAGE.mul(x, y))
        assert left == right

    def test_string_rendering(self):
        assert str(Lineage.absent()) == "absent"
        assert str(Lineage(["b", "a"])) == "{a,b}"
