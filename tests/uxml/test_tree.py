"""The K-UXML data model: trees, forests, measurements and homomorphism lifting."""

from __future__ import annotations

import pytest

from repro.errors import UXMLError
from repro.kcollections import KSet
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, duplicate_elimination, variables
from repro.uxml import (
    TreeBuilder,
    UTree,
    forest,
    forest_size,
    leaf,
    map_forest_annotations,
    map_tree_annotations,
    tree_size,
)


class TestUTree:
    def test_leaf(self):
        tree = leaf(NATURAL, "a")
        assert tree.is_leaf()
        assert tree.label == "a"
        assert tree.size() == 1
        assert tree.height() == 1

    def test_label_must_be_string(self):
        with pytest.raises(UXMLError):
            UTree(42, KSet.empty(NATURAL))  # type: ignore[arg-type]

    def test_children_must_be_trees(self):
        with pytest.raises(UXMLError):
            UTree("a", KSet(NATURAL, [("not-a-tree", 1)]))

    def test_children_must_be_a_kset(self):
        with pytest.raises(UXMLError):
            UTree("a", ["child"])  # type: ignore[arg-type]

    def test_equality_is_structural_and_unordered(self, nat_builder):
        b = nat_builder
        left = b.tree("a", b.leaf("x"), b.leaf("y"))
        right = b.tree("a", b.leaf("y"), b.leaf("x"))
        assert left == right
        assert hash(left) == hash(right)

    def test_equality_distinguishes_annotations(self, nat_builder):
        b = nat_builder
        assert b.tree("a", b.leaf("x") @ 2) != b.tree("a", b.leaf("x") @ 3)

    def test_repeated_children_merge_annotations(self, nat_builder):
        b = nat_builder
        tree = b.tree("a", b.leaf("x") @ 2, b.leaf("x") @ 3)
        assert tree.children.annotation(b.leaf("x")) == 5

    def test_size_and_height(self, nat_builder):
        b = nat_builder
        tree = b.tree("a", b.tree("b", b.leaf("c")), b.leaf("d"))
        assert tree.size() == 4
        assert tree.height() == 3
        assert tree_size(tree) == 4

    def test_subtrees_and_find(self, nat_builder):
        b = nat_builder
        tree = b.tree("a", b.tree("b", b.leaf("c")), b.leaf("c"))
        assert len(list(tree.subtrees())) == 4
        assert len(list(tree.find("c"))) == 2
        assert tree.labels() == frozenset({"a", "b", "c"})

    def test_annotations_iterates_all_levels(self, prov_builder):
        b = prov_builder
        tree = b.tree("a", b.tree("b", b.leaf("c") @ "y") @ "x")
        rendered = sorted(str(annotation) for annotation in tree.annotations())
        assert rendered == ["x", "y"]

    def test_immutability(self, nat_builder):
        tree = nat_builder.leaf("a")
        with pytest.raises(AttributeError):
            tree.label = "b"  # type: ignore[misc]


class TestForest:
    def test_forest_builder_function(self):
        a = leaf(NATURAL, "a")
        collection = forest(NATURAL, a, (a, 2))
        assert collection.annotation(a) == 3

    def test_forest_rejects_non_trees(self):
        with pytest.raises(UXMLError):
            forest(NATURAL, "not-a-tree")  # type: ignore[arg-type]

    def test_forest_size(self, nat_builder):
        b = nat_builder
        collection = b.forest(b.tree("a", b.leaf("x")), b.leaf("y"))
        assert forest_size(collection) == 3


class TestTreeBuilder:
    def test_at_operator_annotates(self, prov_builder):
        b = prov_builder
        x, = variables("x")
        tree = b.tree("a", b.leaf("d") @ "x")
        assert tree.children.annotation(b.leaf("d")) == x

    def test_pair_and_string_children(self, nat_builder):
        b = nat_builder
        tree = b.tree("a", (b.leaf("d"), 3), "e")
        assert tree.children.annotation(b.leaf("d")) == 3
        assert tree.children.annotation(b.leaf("e")) == 1

    def test_record_builder(self, nat_builder):
        record = nat_builder.record("t", [("A", "a"), ("B", "b")])
        assert record.label == "t"
        assert {child.label for child in record.child_trees()} == {"A", "B"}

    def test_invalid_annotation_rejected(self, nat_builder):
        with pytest.raises(UXMLError):
            nat_builder.tree("a", nat_builder.leaf("d") @ "not-a-number-at-all")

    def test_singleton(self, nat_builder):
        b = nat_builder
        single = b.singleton(b.leaf("a"), 4)
        assert single.annotation(b.leaf("a")) == 4


class TestHomomorphismLifting:
    def test_map_tree_annotations_with_function(self, nat_builder):
        b = nat_builder
        tree = b.tree("a", b.leaf("x") @ 2, b.tree("b", b.leaf("y") @ 3) @ 1)
        doubled = map_tree_annotations(tree, lambda n: 2 * n)
        assert doubled.children.annotation(b.leaf("x")) == 4

    def test_map_forest_annotations_with_homomorphism(self, nat_builder):
        b = nat_builder
        collection = b.forest(b.tree("a", b.leaf("x") @ 2) @ 3, b.leaf("y") @ 0)
        as_sets = map_forest_annotations(collection, duplicate_elimination())
        assert as_sets.semiring == BOOLEAN
        bool_builder = TreeBuilder(BOOLEAN)
        expected_member = bool_builder.tree("a", bool_builder.leaf("x"))
        assert as_sets.annotation(expected_member) is True

    def test_lifting_merges_collapsing_children(self, prov_builder):
        """Distinct N[X] children can collapse after specialization; annotations add."""
        from repro.semirings import polynomial_valuation

        b = prov_builder
        tree = b.tree("a", b.leaf("d") @ "x", b.tree("d") @ "y")
        hom = polynomial_valuation({"x": 2, "y": 3}, NATURAL)
        specialized = map_tree_annotations(tree, hom)
        nat_b = TreeBuilder(NATURAL)
        assert specialized.children.annotation(nat_b.leaf("d")) == 5
