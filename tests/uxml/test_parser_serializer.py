"""Parsing and serializing annotated XML documents."""

from __future__ import annotations

import pytest

from repro.errors import UXMLParseError
from repro.semirings import BOOLEAN, CLEARANCE, NATURAL, PROVENANCE, Polynomial
from repro.uxml import (
    TreeBuilder,
    forest_to_xml,
    parse_document,
    parse_forest,
    parse_tree,
    to_paper_notation,
    to_xml,
)

FIGURE1_XML = """
<a annot="z">
  <b annot="x1"> <d annot="y1"/> </b>
  <c annot="x2"> <d annot="y2"/> <e annot="y3"/> </c>
</a>
"""


class TestParsing:
    def test_parse_tree_reads_annotations(self):
        tree, annotation = parse_tree(FIGURE1_XML, PROVENANCE)
        assert annotation == Polynomial.variable("z")
        assert tree.label == "a"
        assert len(tree.children) == 2

    def test_parse_document_wraps_root(self):
        document = parse_document(FIGURE1_XML, PROVENANCE)
        assert len(document) == 1
        (root,) = document
        assert document.annotation(root) == Polynomial.variable("z")

    def test_parse_matches_builder(self):
        b = TreeBuilder(PROVENANCE)
        expected = b.forest(
            b.tree(
                "a",
                b.tree("b", b.leaf("d") @ "y1") @ "x1",
                b.tree("c", b.leaf("d") @ "y2", b.leaf("e") @ "y3") @ "x2",
            )
            @ "z"
        )
        assert parse_document(FIGURE1_XML, PROVENANCE) == expected

    def test_missing_annotation_defaults_to_one(self):
        tree, annotation = parse_tree("<a><b/></a>", NATURAL)
        assert annotation == 1
        assert tree.children.annotation(TreeBuilder(NATURAL).leaf("b")) == 1

    def test_text_content_becomes_leaf_children(self):
        tree, _ = parse_tree("<A>a</A>", NATURAL)
        assert tree.children.annotation(TreeBuilder(NATURAL).leaf("a")) == 1

    def test_natural_annotations(self):
        tree, _ = parse_tree('<a><b annot="3"/></a>', NATURAL)
        assert tree.children.annotation(TreeBuilder(NATURAL).leaf("b")) == 3

    def test_clearance_annotations(self):
        tree, _ = parse_tree('<a><b annot="S"/></a>', CLEARANCE)
        assert tree.children.annotation(TreeBuilder(CLEARANCE).leaf("b")) == "S"

    def test_bad_annotation_raises(self):
        with pytest.raises(UXMLParseError):
            parse_tree('<a><b annot="x+"/></a>', NATURAL)

    def test_malformed_xml_raises(self):
        with pytest.raises(UXMLParseError):
            parse_tree("<a><b></a>", NATURAL)

    def test_parse_forest_unwraps_wrapper(self):
        text = '<forest><a annot="2"/><b/></forest>'
        collection = parse_forest(text, NATURAL)
        b = TreeBuilder(NATURAL)
        assert collection.annotation(b.leaf("a")) == 2
        assert collection.annotation(b.leaf("b")) == 1

    def test_ordering_in_document_is_irrelevant(self):
        first = parse_tree("<a><b/><c/></a>", BOOLEAN)
        second = parse_tree("<a><c/><b/></a>", BOOLEAN)
        assert first == second


class TestSerialization:
    def test_round_trip_through_xml(self):
        document = parse_document(FIGURE1_XML, PROVENANCE)
        (root,) = document
        xml = to_xml(root, document.annotation(root))
        assert parse_document(xml, PROVENANCE) == document

    def test_forest_round_trip(self):
        b = TreeBuilder(NATURAL)
        collection = b.forest(b.tree("a", b.leaf("x") @ 2) @ 3, b.leaf("y"))
        xml = forest_to_xml(collection)
        assert parse_forest(xml, NATURAL) == collection

    def test_empty_forest(self):
        from repro.kcollections import KSet

        assert forest_to_xml(KSet.empty(NATURAL)) == "<forest/>"

    def test_paper_notation_is_deterministic(self):
        b = TreeBuilder(PROVENANCE)
        left = b.tree("a", b.leaf("x") @ "p", b.leaf("y"))
        right = b.tree("a", b.leaf("y"), b.leaf("x") @ "p")
        assert to_paper_notation(left) == to_paper_notation(right)
        assert to_paper_notation(left) == "a[ x^{p} y ]"

    def test_paper_notation_of_forest(self):
        b = TreeBuilder(NATURAL)
        collection = b.forest(b.leaf("a") @ 2)
        assert to_paper_notation(collection) == "( a^{2} )"

    def test_paper_notation_rejects_other_values(self):
        with pytest.raises(TypeError):
            to_paper_notation(42)  # type: ignore[arg-type]

    def test_xml_escapes_labels(self):
        b = TreeBuilder(NATURAL)
        tree = b.tree("a", b.leaf("x&y"))
        assert "x&amp;y" in to_xml(tree)
