"""Reference navigation axes on K-UXML forests."""

from __future__ import annotations

import pytest

from repro.errors import UXMLError
from repro.paperdata import figure4_source
from repro.semirings import NATURAL, PROVENANCE, Polynomial
from repro.uxml import (
    TreeBuilder,
    apply_axis,
    axis_child,
    axis_descendant,
    axis_descendant_or_self,
    axis_self,
    double_slash,
    matches_nodetest,
)

POLY = Polynomial.parse


@pytest.fixture
def simple_forest(prov_builder):
    b = prov_builder
    return b.forest(
        b.tree(
            "a",
            b.tree("b", b.leaf("d") @ "y1") @ "x1",
            b.tree("c", b.leaf("d") @ "y2", b.leaf("e") @ "y3") @ "x2",
        )
        @ "z"
    )


class TestNodeTests:
    def test_wildcard_matches_everything(self, prov_builder):
        assert matches_nodetest(prov_builder.leaf("anything"), "*")

    def test_label_match(self, prov_builder):
        assert matches_nodetest(prov_builder.leaf("a"), "a")
        assert not matches_nodetest(prov_builder.leaf("a"), "b")


class TestAxes:
    def test_self_axis_filters_by_label(self, simple_forest, prov_builder):
        result = axis_self(simple_forest, "a")
        assert len(result) == 1
        assert axis_self(simple_forest, "zzz").is_empty()

    def test_self_axis_keeps_annotations(self, simple_forest):
        result = axis_self(simple_forest, "*")
        assert result == simple_forest

    def test_child_axis_multiplies_annotations(self, simple_forest, prov_builder):
        b = prov_builder
        children = axis_child(simple_forest, "*")
        expected_b = b.tree("b", b.leaf("d") @ "y1")
        assert children.annotation(expected_b) == POLY("z*x1")

    def test_child_axis_with_nodetest(self, simple_forest, prov_builder):
        children = axis_child(simple_forest, "b")
        assert len(children) == 1

    def test_grandchildren_reproduce_figure1(self, simple_forest, prov_builder):
        b = prov_builder
        grandchildren = axis_child(axis_child(simple_forest, "*"), "*")
        assert grandchildren.annotation(b.leaf("d")) == POLY("z*x1*y1 + z*x2*y2")
        assert grandchildren.annotation(b.leaf("e")) == POLY("z*x2*y3")

    def test_descendant_or_self_includes_roots(self, simple_forest):
        result = axis_descendant_or_self(simple_forest, "*")
        assert len(result) == 5  # a, b-subtree, c-subtree, d (two occurrences merge), e
        roots = axis_self(simple_forest, "a")
        for root in roots:
            assert root in result

    def test_descendant_excludes_roots(self, simple_forest):
        result = axis_descendant(simple_forest, "*")
        for root in axis_self(simple_forest, "a"):
            assert root not in result

    def test_descendant_annotations_sum_over_paths(self, prov_builder):
        source = figure4_source()
        b = prov_builder
        result = axis_descendant(source, "c")
        assert result.annotation(b.leaf("c")) == POLY("x1*y3 + y1*y2")

    def test_double_slash_matches_paper_figure4(self, prov_builder):
        from repro.paperdata import figure4_expected_children

        source = figure4_source()
        result = double_slash(source, "c")
        assert dict(result.items()) == dict(figure4_expected_children().items())

    def test_descendant_or_self_vs_child_composition(self, simple_forest):
        via_dos = axis_child(axis_descendant_or_self(simple_forest, "*"), "d")
        via_desc = axis_descendant(simple_forest, "d")
        assert via_dos == via_desc

    def test_apply_axis_dispatch(self, simple_forest):
        assert apply_axis(simple_forest, "child", "*") == axis_child(simple_forest, "*")
        with pytest.raises(UXMLError):
            apply_axis(simple_forest, "parent", "*")

    def test_axes_on_empty_forest(self):
        from repro.kcollections import KSet

        empty = KSet.empty(NATURAL)
        assert axis_child(empty, "*").is_empty()
        assert axis_descendant(empty, "*").is_empty()

    def test_bag_semantics_counts_paths(self, nat_builder):
        b = nat_builder
        source = b.forest(b.tree("r", b.tree("a", b.leaf("x") @ 2) @ 3))
        descendants = axis_descendant(source, "x")
        assert descendants.annotation(b.leaf("x")) == 6
