"""The metrics registry: instruments, collectors, and both exporters."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    default_registry,
    parse_prometheus,
    registry_json,
    render_prometheus,
)


class TestInstruments:
    def test_counter_increments_per_label_set(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total", "events")
        counter.inc()
        counter.inc(2, kind="a")
        counter.inc(kind="a")
        assert counter.value() == 1
        assert counter.value(kind="a") == 3
        assert counter.value(kind="missing") == 0

    def test_counter_set_supports_scoped_restore(self):
        registry = MetricsRegistry()
        counter = registry.counter("events_total")
        counter.inc(7, kind="x")
        saved = counter.value(kind="x")
        counter.set(0, kind="x")
        counter.inc(kind="x")
        counter.set(saved, kind="x")
        assert counter.value(kind="x") == 7

    def test_gauge_goes_up_and_down(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency_seconds", buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.005)
        histogram.observe(0.05)
        histogram.observe(5.0)
        state = histogram.value()
        assert state["buckets"] == [1, 2, 2]  # cumulative le-counts
        assert state["count"] == 3
        assert state["sum"] == pytest.approx(5.055)

    def test_get_or_create_returns_same_family(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_kind_mismatch_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered as a counter"):
            registry.gauge("thing")

    def test_reset_clears_every_instrument(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(9)
        registry.reset()
        assert registry.counter("c").value() == 0
        assert registry.gauge("g").value() == 0

    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")

        def hammer():
            for _ in range(1000):
                counter.inc(kind="shared")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(kind="shared") == 4000


class TestCollectors:
    def test_strong_collector_emits_at_export(self):
        registry = MetricsRegistry()
        registry.counter("pulled_total", "pulled")
        registry.register_collector(
            "src", lambda sink: sink.counter("pulled_total", 42, origin="cell")
        )
        families = registry.snapshot()
        samples = families["pulled_total"]["samples"]
        assert {"labels": {"origin": "cell"}, "value": 42} in samples
        # Declared kind/help win over what the collector supplies.
        assert families["pulled_total"]["help"] == "pulled"

    def test_object_collector_dies_with_its_owner(self):
        registry = MetricsRegistry()

        class Owner:
            def collect(self, sink):
                sink.gauge("owner_gauge", 1, who="me")

        owner = Owner()
        registry.register_object_collector("owner", owner, Owner.collect)
        assert "owner_gauge" in registry.snapshot()
        del owner
        import gc

        gc.collect()
        assert "owner_gauge" not in registry.snapshot()

    def test_unregister_collector(self):
        registry = MetricsRegistry()
        registry.register_collector("gone", lambda sink: sink.counter("x_total", 1))
        registry.unregister_collector("gone")
        assert "x_total" not in registry.snapshot()


class TestExport:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("requests_total", "requests").inc(3, method="query")
        registry.counter("requests_total").inc(1, method="batch")
        registry.gauge("cache_size", "cached plans").set(12)
        registry.histogram("latency_seconds", "latency", buckets=(0.1, 1.0)).observe(0.5)
        registry.counter("silent_total", "armed but unincremented")
        return registry

    def test_prometheus_text_parses_and_round_trips_values(self):
        registry = self._populated()
        text = render_prometheus(registry)
        assert '# TYPE requests_total counter' in text
        assert '# HELP cache_size cached plans' in text
        parsed = parse_prometheus(text)
        assert parsed["requests_total"]["type"] == "counter"
        assert parsed["requests_total"]["samples"]['requests_total{method="query"}'] == 3
        assert parsed["cache_size"]["samples"]["cache_size"] == 12
        # Histogram explodes into _bucket/_sum/_count series.
        samples = parsed["latency_seconds"]["samples"]
        assert samples['latency_seconds_bucket{le="1"}'] == 1
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 1
        assert samples["latency_seconds_count"] == 1

    def test_sample_less_family_exposes_a_zero_series(self):
        text = render_prometheus(self._populated())
        assert "\nsilent_total 0" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total").inc(1, path='a"b\\c\nd')
        text = render_prometheus(registry)
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        parse_prometheus(text)  # must stay parseable

    def test_parse_prometheus_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("# TYPE broken notakind\n")
        with pytest.raises(ValueError):
            parse_prometheus("name_without_value\n")

    def test_registry_json_round_trips(self):
        payload = registry_json(self._populated())
        assert json.loads(json.dumps(payload)) == payload
        assert payload["requests_total"]["type"] == "counter"
        values = {
            tuple(sorted(sample["labels"].items())): sample["value"]
            for sample in payload["requests_total"]["samples"]
        }
        assert values[(("method", "query"),)] == 3


class TestExemplars:
    def _traced_histogram(self) -> tuple[MetricsRegistry, str]:
        from repro.obs.trace import tracing

        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", "latency", buckets=(0.1, 1.0))
        with tracing() as tracer:
            histogram.observe(0.05)
            histogram.observe(5.0)
        return registry, tracer.trace_id

    def test_histogram_records_exemplar_per_bucket(self):
        registry, trace_id = self._traced_histogram()
        state = registry.histogram("lat_seconds").value()
        exemplars = state["exemplars"]
        assert exemplars[0]["trace_id"] == trace_id  # 0.05 -> le=0.1 bucket
        assert exemplars[2]["trace_id"] == trace_id  # 5.0 -> +Inf bucket
        assert exemplars[2]["value"] == 5.0

    def test_no_exemplar_without_an_armed_trace(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", buckets=(0.1,)).observe(0.01)
        assert "exemplars" not in registry.histogram("lat_seconds").value()

    def test_exemplars_can_be_disabled_per_histogram(self):
        from repro.obs.trace import tracing

        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds", buckets=(0.1,), exemplars=False)
        with tracing():
            histogram.observe(0.01)
        assert "exemplars" not in histogram.value()

    def test_render_emits_openmetrics_exemplar_syntax(self):
        registry, trace_id = self._traced_histogram()
        text = render_prometheus(registry)
        assert f'lat_seconds_bucket{{le="0.1"}} 1 # {{trace_id="{trace_id}"}} 0.05' in text
        assert f'# {{trace_id="{trace_id}"}} 5' in text
        # The un-exemplared middle bucket renders plain.
        assert 'lat_seconds_bucket{le="1"} 1\n' in text

    def test_parse_round_trips_exemplar_bearing_output(self):
        registry, trace_id = self._traced_histogram()
        parsed = parse_prometheus(render_prometheus(registry))
        family = parsed["lat_seconds"]
        assert family["samples"]['lat_seconds_bucket{le="0.1"}'] == 1
        assert family["samples"]['lat_seconds_bucket{le="+Inf"}'] == 2
        exemplar = family["exemplars"]['lat_seconds_bucket{le="0.1"}']
        assert trace_id in exemplar["labels"]
        assert exemplar["value"] == pytest.approx(0.05)

    def test_parse_round_trips_escaped_labels_with_exemplars(self):
        from repro.obs.trace import tracing

        registry = MetricsRegistry()
        registry.counter("c_total").inc(1, path='a"b\\c\nd')
        with tracing():
            registry.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        text = render_prometheus(registry)
        parsed = parse_prometheus(text)
        assert parsed["c_total"]["samples"]['c_total{path="a\\"b\\\\c\\nd"}'] == 1
        assert any("h_seconds_bucket" in key for key in parsed["h_seconds"]["exemplars"])

    def test_parse_rejects_malformed_exemplars(self):
        with pytest.raises(ValueError):
            parse_prometheus('h_bucket{le="1"} 1 # notbraces 0.5\n')
        with pytest.raises(ValueError):
            parse_prometheus('h_bucket{le="1"} 1 # {trace_id="x"}\n')


class TestSlowQueryConcurrency:
    def test_concurrent_recorders_and_readers(self):
        from repro.obs.profile import clear_slow_queries, record_slow_query, slow_queries

        clear_slow_queries()
        try:
            errors: list[BaseException] = []
            stop = threading.Event()

            def write(worker: int):
                try:
                    for index in range(300):
                        record_slow_query({"worker": worker, "index": index})
                except BaseException as error:  # pragma: no cover - failure path
                    errors.append(error)

            def read():
                try:
                    while not stop.is_set():
                        for entry in slow_queries():
                            assert "timestamp" in entry
                except BaseException as error:  # pragma: no cover - failure path
                    errors.append(error)

            writers = [threading.Thread(target=write, args=(n,)) for n in range(4)]
            readers = [threading.Thread(target=read) for _ in range(2)]
            for thread in readers + writers:
                thread.start()
            for thread in writers:
                thread.join()
            stop.set()
            for thread in readers:
                thread.join()
            assert not errors
            # The buffer is bounded (maxlen=256) and holds the newest entries.
            entries = slow_queries()
            assert len(entries) == 256
            assert entries[-1]["index"] == 299
        finally:
            clear_slow_queries()


class TestDefaultRegistryIntegration:
    def test_subsystem_families_are_published(self):
        # Importing the subsystems registers their families; a fresh export
        # must expose every surface the CLI promises.
        import repro.exec.batch  # noqa: F401  (worker events)
        import repro.exec.plan_cache  # noqa: F401  (plan-cache families)
        import repro.ivm.view  # noqa: F401  (view maintenance)
        import repro.nrc.codegen  # noqa: F401  (codegen counters)
        import repro.store.store  # noqa: F401  (store families)

        text = render_prometheus(default_registry())
        for family in (
            "repro_plan_cache_hits_total",
            "repro_view_maintenance_total",
            "repro_store_operations_total",
            "repro_worker_events_total",
            "repro_codegen_generated_total",
            "repro_codegen_declined_total",
            "repro_codegen_calls_total",
            "repro_slow_queries_total",
        ):
            assert f"# TYPE {family} counter" in text
        parse_prometheus(text)  # the full default export stays well-formed

    def test_worker_stats_reads_through_the_registry(self):
        from repro.exec import scoped_worker_stats, worker_stats
        from repro.exec.batch import _bump_worker_stats

        with scoped_worker_stats():
            before = worker_stats()
            assert before == {
                "retries": 0,
                "degraded": 0,
                "pool_rebuilds": 0,
                "broken_pools": 0,
            }
            _bump_worker_stats(retries=2, degraded=1)
            after = worker_stats()
            assert after["retries"] == 2
            assert after["degraded"] == 1
            events = default_registry().counter("repro_worker_events_total")
            assert events.value(kind="retries") == 2

    def test_scoped_worker_stats_restores_outer_values(self):
        from repro.exec import scoped_worker_stats, worker_stats
        from repro.exec.batch import _bump_worker_stats

        with scoped_worker_stats():
            _bump_worker_stats(retries=5)
            outer = worker_stats()
            with scoped_worker_stats():
                assert worker_stats()["retries"] == 0  # zeroed on entry
                _bump_worker_stats(retries=99)
            # Inner activity is discarded, outer view restored exactly.
            assert worker_stats() == outer
