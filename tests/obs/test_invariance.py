"""Instrumentation invariance: arming tracing/profiling must not change results.

Every registry semiring, all three evaluators: the K-annotated result with
tracing armed and with profiling armed is byte-identical (same value, same
paper notation) to the uninstrumented run, and the three-evaluator
equivalence holds while instrumented.
"""

from __future__ import annotations

from repro.obs.profile import profile_evaluate
from repro.obs.trace import tracing
from repro.uxml import to_paper_notation
from repro.uxquery import prepare_query
from repro.workloads import random_forest

METHODS = ("nrc-codegen", "nrc", "nrc-interp")
QUERY = "($S)/*/*"


def _notation(result) -> str:
    return to_paper_notation(result)


class TestInstrumentationInvariance:
    def test_tracing_preserves_results_and_equivalence(self, any_semiring):
        forest = random_forest(any_semiring, num_trees=2, depth=3, fanout=2, seed=11)
        prepared = prepare_query(QUERY, any_semiring, {"S": forest})
        baseline = {
            method: prepared.evaluate({"S": forest}, method=method)
            for method in METHODS
        }
        with tracing() as tracer:
            armed = {
                method: prepared.evaluate({"S": forest}, method=method)
                for method in METHODS
            }
        assert tracer.spans  # the instrumentation really was live
        for method in METHODS:
            assert armed[method] == baseline[method]
            assert _notation(armed[method]) == _notation(baseline[method])
        # Three-evaluator equivalence survives arming.
        notations = {_notation(armed[method]) for method in METHODS}
        assert len(notations) == 1

    def test_profiling_preserves_results_and_equivalence(self, any_semiring):
        forest = random_forest(any_semiring, num_trees=2, depth=3, fanout=2, seed=12)
        prepared = prepare_query(QUERY, any_semiring, {"S": forest})
        profiled = {}
        for method in METHODS:
            baseline = prepared.evaluate({"S": forest}, method=method)
            result, report = profile_evaluate(prepared, {"S": forest}, method=method)
            assert result == baseline
            assert _notation(result) == _notation(baseline)
            assert report.method == method
            profiled[method] = result
        notations = {_notation(profiled[method]) for method in METHODS}
        assert len(notations) == 1

    def test_tracing_and_profiling_stack(self, any_semiring):
        forest = random_forest(any_semiring, num_trees=2, depth=2, fanout=2, seed=13)
        prepared = prepare_query(QUERY, any_semiring, {"S": forest})
        baseline = prepared.evaluate({"S": forest})
        with tracing():
            result, _report = profile_evaluate(prepared, {"S": forest})
        assert result == baseline
        assert _notation(result) == _notation(baseline)
