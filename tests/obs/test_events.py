"""The flight recorder: ring semantics, configuration, and every wired site."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import events
from repro.obs.metrics import default_registry
from repro.obs.trace import tracing


@pytest.fixture(autouse=True)
def _clean_ring():
    events.clear_events()
    with events.recording(True):
        yield
    events.clear_events()


class TestRingSemantics:
    def test_emit_returns_the_recorded_event(self):
        event = events.emit("codegen.decline", reason="test", semiring="N")
        assert event["kind"] == "codegen.decline"
        assert event["attrs"] == {"reason": "test", "semiring": "N"}
        assert events.recent_events()[-1] == event

    def test_events_come_back_oldest_first_with_monotonic_seq(self):
        first = events.emit("limits.timeout", timeout_s=1)
        second = events.emit("limits.budget", budget="rows")
        listed = events.recent_events()
        assert listed[-2:] == [first, second]
        assert second["seq"] == first["seq"] + 1

    def test_kind_filter_and_tail_limit(self):
        for index in range(5):
            events.emit("ivm.recompute", reason=f"r{index}")
        events.emit("limits.timeout", timeout_s=1)
        recomputes = events.recent_events(kind="ivm.recompute", limit=2)
        assert [event["attrs"]["reason"] for event in recomputes] == ["r3", "r4"]

    def test_undeclared_kind_is_rejected_until_declared(self):
        with pytest.raises(ValueError, match="undeclared event kind"):
            events.emit("made.up")
        events.declare_event("made.up", "ad-hoc test kind")
        assert events.emit("made.up")["kind"] == "made.up"

    def test_ring_is_bounded_and_keeps_the_newest(self):
        previous = events.ring_capacity()
        try:
            events.set_ring_capacity(4)
            for index in range(10):
                events.emit("fault.injected", site="s", action="raise", index=index)
            kept = [event["attrs"]["index"] for event in events.recent_events()]
            assert kept == [6, 7, 8, 9]
        finally:
            events.set_ring_capacity(previous)

    def test_disabled_recorder_costs_nothing_and_records_nothing(self):
        with events.recording(False):
            assert events.emit("limits.timeout", timeout_s=1) is None
        assert events.recent_events(kind="limits.timeout") == []

    def test_emit_increments_the_events_counter(self):
        counter = default_registry().counter("repro_events_total")
        before = counter.value(kind="store.wal_compact")
        events.emit("store.wal_compact", documents=1)
        assert counter.value(kind="store.wal_compact") == before + 1

    def test_concurrent_emitters_drop_nothing_below_capacity(self):
        errors: list[BaseException] = []

        def hammer(worker: int):
            try:
                for index in range(50):
                    events.emit("worker.retry", documents=1, worker=worker, index=index)
            except BaseException as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(n,)) for n in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        retries = events.recent_events(kind="worker.retry")
        assert len(retries) == 200
        assert len({event["seq"] for event in retries}) == 200

    def test_export_jsonl_round_trips(self):
        events.emit("query.slow", duration_ms=12.5)
        text = events.export_jsonl(events.recent_events(kind="query.slow"))
        lines = [json.loads(line) for line in text.splitlines()]
        assert lines[-1]["attrs"]["duration_ms"] == 12.5


class TestConfiguration:
    def test_env_off_disables_recording(self):
        events.refresh_event_config({"REPRO_EVENTS": "off"})
        try:
            assert not events.is_recording()
            assert events.emit("limits.timeout", timeout_s=1) is None
        finally:
            events.refresh_event_config({})
        assert events.is_recording()

    def test_event_log_mirror_writes_jsonl(self, tmp_path):
        log = tmp_path / "events.jsonl"
        events.refresh_event_config({"REPRO_EVENT_LOG": str(log)})
        try:
            events.emit("store.wal_compact", documents=3)
            events.emit("limits.budget", budget="rows", rows=10)
        finally:
            events.refresh_event_config({})
        mirrored = [json.loads(line) for line in log.read_text().splitlines()]
        assert [event["kind"] for event in mirrored] == [
            "store.wal_compact",
            "limits.budget",
        ]
        assert mirrored[0]["attrs"]["documents"] == 3

    def test_events_carry_the_active_trace_id(self):
        with tracing() as tracer:
            traced = events.emit("ivm.recompute", reason="test")
        untraced = events.emit("ivm.recompute", reason="test")
        assert traced["trace_id"] == tracer.trace_id
        assert untraced["trace_id"] is None

    def test_sampled_out_scopes_still_expose_their_id(self):
        # Head-sampled-out traces record no spans, but events inside them
        # keep the id — tail promotion can later make the trace visible.
        with tracing(sample_rate=0.0) as tracer:
            event = events.emit("codegen.decline", reason="test", semiring="N")
        assert event["trace_id"] == tracer.trace_id


class TestWiredSites:
    """Every instrumented subsystem leaves its event in the ring."""

    def test_worker_death_leaves_traced_retry_events(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        from repro.exec import BatchEvaluator, scoped_worker_stats
        from repro.resilience import disarm_all, fail_at
        from repro.semirings import NATURAL
        from repro.uxquery import prepare_query
        from repro.workloads import random_forest

        documents = [
            random_forest(NATURAL, num_trees=2, depth=2, fanout=2, seed=60 + n)
            for n in range(4)
        ]
        prepared = prepare_query("($S)/*", NATURAL, {"S": documents[0]})
        evaluator = BatchEvaluator(prepared)
        expected = evaluator.evaluate_many(documents)
        disarm_all()
        with scoped_worker_stats():
            with fail_at("exec.worker.task", action="exit", flag=str(tmp_path / "killed")):
                with tracing(sample_rate=1.0) as tracer:
                    with ProcessPoolExecutor(max_workers=2) as executor:
                        results = evaluator.evaluate_many(documents, executor=executor)
        disarm_all()
        assert results == expected
        broken = events.recent_events(kind="worker.pool_broken")
        retried = events.recent_events(kind="worker.retry")
        assert broken and retried
        assert tracer.sampled
        assert broken[-1]["trace_id"] == tracer.trace_id
        assert retried[-1]["trace_id"] == tracer.trace_id
        assert retried[-1]["attrs"]["documents"] >= 1

    def test_spent_retry_budget_emits_degraded(self, tmp_path, monkeypatch):
        from concurrent.futures import ProcessPoolExecutor

        from repro.exec import BatchEvaluator, scoped_worker_stats
        from repro.exec import batch as batch_module
        from repro.resilience import disarm_all, fail_at
        from repro.semirings import NATURAL
        from repro.uxquery import prepare_query
        from repro.workloads import random_forest

        monkeypatch.setattr(batch_module, "_RETRY_BUDGET", 0)
        documents = [
            random_forest(NATURAL, num_trees=2, depth=2, fanout=2, seed=70 + n)
            for n in range(3)
        ]
        prepared = prepare_query("($S)/*", NATURAL, {"S": documents[0]})
        evaluator = BatchEvaluator(prepared)
        disarm_all()
        with scoped_worker_stats():
            with fail_at("exec.worker.task", action="exit", flag=str(tmp_path / "killed")):
                with ProcessPoolExecutor(max_workers=2) as executor:
                    evaluator.evaluate_many(documents, executor=executor)
        disarm_all()
        degraded = events.recent_events(kind="worker.degraded")
        assert degraded
        assert degraded[-1]["attrs"]["retry_budget"] == 0

    def test_forced_ivm_recompute_is_traced_with_a_reason(self):
        from repro.ivm import Delta
        from repro.semirings import BOOLEAN
        from repro.uxquery import prepare_query
        from repro.workloads import random_forest

        document = random_forest(BOOLEAN, num_trees=4, depth=2, fanout=2, seed=9)
        prepared = prepare_query("($S)//c", BOOLEAN, {"S": document})
        view = prepared.materialize(document)
        tree = next(iter(view.document))
        with tracing(sample_rate=1.0) as tracer:
            view.apply(Delta.deletion(BOOLEAN, tree, view.document.annotation(tree)))
        recomputes = events.recent_events(kind="ivm.recompute")
        assert recomputes
        event = recomputes[-1]
        assert "subtraction" in event["attrs"]["reason"]
        assert event["trace_id"] == tracer.trace_id
        assert tracer.sampled

    def test_non_incremental_fold_emits_recompute(self):
        from repro.ivm import Delta
        from repro.semirings import NATURAL
        from repro.uxquery import prepare_query
        from repro.workloads import random_forest, random_tree

        document = random_forest(NATURAL, num_trees=3, depth=2, fanout=2, seed=11)
        prepared = prepare_query("element out { ($S)/* }", NATURAL, {"S": document})
        view = prepared.materialize(document)
        deltas = [
            Delta.insertion(NATURAL, random_tree(NATURAL, depth=1, fanout=1, seed=n), 1)
            for n in range(2)
        ]
        view.apply_many(deltas)
        recomputes = events.recent_events(kind="ivm.recompute")
        assert recomputes
        assert recomputes[-1]["attrs"]["reason"] == "non-incremental plan"

    def test_codegen_decline_is_recorded(self):
        from repro.semirings import NATURAL
        from repro.uxquery import prepare_query
        from repro.workloads import random_forest

        document = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=3)
        # A unique surface string sidesteps the process-wide plan cache.
        prepared = prepare_query("element evdecl { $S//c }", NATURAL, {"S": document})
        assert prepared.generated is None
        declines = events.recent_events(kind="codegen.decline")
        assert declines
        assert "srt" in declines[-1]["attrs"]["reason"]
        assert declines[-1]["attrs"]["semiring"] == NATURAL.name

    def test_pushdown_fallback_is_recorded(self):
        from repro.semirings import NATURAL
        from repro.store import DocumentStore
        from repro.workloads import random_forest

        store = DocumentStore(NATURAL)
        store.ingest("doc", random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=31))
        store.query("element evfall { ($S/a, $S//b) }")
        fallbacks = events.recent_events(kind="store.pushdown_fallback")
        assert fallbacks
        assert fallbacks[-1]["attrs"]["semiring"] == NATURAL.name

    def test_wal_compaction_is_recorded(self, tmp_path):
        from repro.semirings import NATURAL
        from repro.store import DocumentStore
        from repro.workloads import random_forest

        store = DocumentStore(NATURAL, directory=tmp_path / "store")
        store.ingest("doc", random_forest(NATURAL, num_trees=2, depth=2, fanout=2, seed=5))
        store.compact()
        compactions = events.recent_events(kind="store.wal_compact")
        assert compactions
        assert compactions[-1]["attrs"]["documents"] == 1
        assert compactions[-1]["attrs"]["snapshots"] >= 1

    def test_limit_trips_are_recorded(self):
        from repro.errors import BudgetExceededError, QueryTimeoutError
        from repro.resilience import EvalLimits

        with pytest.raises(QueryTimeoutError):
            EvalLimits(timeout_s=0).start().tick()
        with pytest.raises(BudgetExceededError):
            EvalLimits(max_rows=1).start().tick(rows=5)
        timeout = events.recent_events(kind="limits.timeout")
        budget = events.recent_events(kind="limits.budget")
        assert timeout and timeout[-1]["attrs"]["timeout_s"] == 0
        assert budget and budget[-1]["attrs"] == {
            "budget": "rows", "rows": 5, "max_rows": 1,
        }

    def test_fired_failpoint_is_recorded(self):
        from repro.errors import FaultInjected
        from repro.resilience import declare_site, fail_at
        from repro.resilience.faults import fail_point

        from repro.resilience.faults import SITE_CATALOG

        declare_site("test.events.site", "ad-hoc flight-recorder test site")
        try:
            with fail_at("test.events.site", action="raise"):
                with pytest.raises(FaultInjected):
                    fail_point("test.events.site")
        finally:
            # An ad-hoc site must not leak into the process-wide catalog:
            # the crash-exhaustive matrix asserts it covers every store site.
            SITE_CATALOG.pop("test.events.site", None)
        fired = events.recent_events(kind="fault.injected")
        assert fired
        assert fired[-1]["attrs"]["site"] == "test.events.site"
        assert fired[-1]["attrs"]["action"] == "raise"


class TestEventsCli:
    def test_repro_events_dumps_the_ring_as_jsonl(self, capsys):
        from repro.cli import main

        events.emit("query.slow", duration_ms=99.5, method="nrc-codegen")
        assert main(["events", "--kind", "query.slow", "--limit", "1"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["kind"] == "query.slow"
        assert event["attrs"]["duration_ms"] == 99.5

    def test_repro_events_reads_a_mirror_file(self, tmp_path, capsys):
        from repro.cli import main

        log = tmp_path / "mirror.jsonl"
        events.refresh_event_config({"REPRO_EVENT_LOG": str(log)})
        try:
            events.emit("limits.timeout", timeout_s=2)
            events.emit("query.slow", duration_ms=1.0)
        finally:
            events.refresh_event_config({})
        assert main(["events", "--log", str(log), "--kind", "limits.timeout"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [json.loads(line)["kind"] for line in lines] == ["limits.timeout"]

    def test_follow_requires_a_log_file(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_EVENT_LOG", raising=False)
        assert main(["events", "--follow"]) == 1
        assert "event log" in capsys.readouterr().err
