"""The telemetry HTTP surface: endpoints, readiness, and WSGI mountability."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import events
from repro.obs.http import (
    TelemetryApp,
    parse_serve_address,
    plan_cache_ready_check,
    start_telemetry_server,
    store_ready_check,
)
from repro.obs.metrics import MetricsRegistry, parse_prometheus


def _get(url: str) -> tuple[int, dict[str, str], bytes]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


@pytest.fixture()
def server():
    with start_telemetry_server(port=0) as live:
        yield live


class TestEndpoints:
    def test_metrics_serves_parseable_prometheus_text(self, server):
        server.app.registry.counter("http_test_total", "test").inc(3, kind="x")
        status, headers, body = _get(server.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        parsed = parse_prometheus(body.decode("utf-8"))
        assert parsed["http_test_total"]["samples"]['http_test_total{kind="x"}'] == 3

    def test_metrics_exposes_exemplars_over_http(self, server):
        from repro.obs.trace import tracing

        histogram = server.app.registry.histogram("http_lat_seconds", buckets=(1.0,))
        with tracing() as tracer:
            histogram.observe(0.5)
        _, _, body = _get(server.url + "/metrics")
        text = body.decode("utf-8")
        assert f'trace_id="{tracer.trace_id}"' in text
        parsed = parse_prometheus(text)
        assert parsed["http_lat_seconds"]["exemplars"]

    def test_varz_is_the_registry_as_json(self, server):
        server.app.registry.gauge("http_varz_gauge").set(7)
        status, headers, body = _get(server.url + "/varz")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        payload = json.loads(body)
        assert payload["http_varz_gauge"]["samples"][0]["value"] == 7

    def test_healthz_is_always_ok(self, server):
        status, _, body = _get(server.url + "/healthz")
        assert status == 200
        assert body == b"ok\n"

    def test_debug_slow_reports_threshold_and_entries(self, server):
        from repro.obs.profile import clear_slow_queries, record_slow_query

        clear_slow_queries()
        try:
            record_slow_query({"surface": "($S)/*", "duration_ms": 99.0})
            status, _, body = _get(server.url + "/debug/slow?limit=5")
            assert status == 200
            payload = json.loads(body)
            assert "threshold_ms" in payload
            assert payload["slow_queries"][-1]["surface"] == "($S)/*"
        finally:
            clear_slow_queries()

    def test_debug_events_serves_json_and_jsonl(self, server):
        events.clear_events()
        with events.recording(True):
            events.emit("limits.timeout", timeout_s=3)
        status, _, body = _get(server.url + "/debug/events?kind=limits.timeout")
        assert status == 200
        payload = json.loads(body)
        assert payload["events"][-1]["attrs"]["timeout_s"] == 3
        status, headers, body = _get(
            server.url + "/debug/events?kind=limits.timeout&format=jsonl"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("application/x-ndjson")
        lines = [json.loads(line) for line in body.decode("utf-8").splitlines()]
        assert lines[-1]["kind"] == "limits.timeout"
        events.clear_events()

    def test_debug_slow_serves_jsonl(self, server):
        from repro.obs.profile import clear_slow_queries, record_slow_query

        clear_slow_queries()
        try:
            record_slow_query({"surface": "($S)/a", "duration_ms": 55.0})
            status, headers, body = _get(server.url + "/debug/slow?format=jsonl&limit=5")
            assert status == 200
            assert headers["Content-Type"].startswith("application/x-ndjson")
            lines = [json.loads(line) for line in body.decode("utf-8").splitlines()]
            assert lines[-1]["surface"] == "($S)/a"
        finally:
            clear_slow_queries()

    def test_debug_queries_serves_signature_stats(self, server):
        from repro.obs import qlog
        from repro.semirings import NATURAL
        from repro.uxquery import prepare_query
        from repro.workloads import random_forest

        qlog.clear_signature_stats()
        qlog.clear_records()
        try:
            forest = random_forest(NATURAL, num_trees=1, depth=3, fanout=2, seed=31)
            prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
            with qlog.recording(True):
                prepared.evaluate({"S": forest})
                prepared.evaluate({"S": forest})
            status, _, body = _get(server.url + "/debug/queries?sort=count&limit=5")
            assert status == 200
            payload = json.loads(body)
            assert payload["sort"] == "count"
            entry = next(
                item
                for item in payload["queries"]
                if item["signature"] == prepared.signature
            )
            assert entry["count"] >= 2
            assert entry["p95_ms"] >= 0.0
            assert entry["query"] == str(prepared.surface)
            status, headers, body = _get(server.url + "/debug/queries?format=jsonl")
            assert status == 200
            assert headers["Content-Type"].startswith("application/x-ndjson")
            lines = [json.loads(line) for line in body.decode("utf-8").splitlines()]
            assert any(line["signature"] == prepared.signature for line in lines)
        finally:
            qlog.clear_signature_stats()
            qlog.clear_records()

    def test_index_lists_the_endpoints(self, server):
        status, _, body = _get(server.url + "/")
        assert status == 200
        endpoints = json.loads(body)["endpoints"]
        assert "/metrics" in endpoints
        assert "/debug/queries" in endpoints

    def test_unknown_path_is_a_json_404(self, server):
        status, _, body = _get(server.url + "/nope")
        assert status == 404
        assert "endpoints" in json.loads(body)

    def test_non_get_is_rejected(self, server):
        request = urllib.request.Request(server.url + "/metrics", data=b"x", method="POST")
        with pytest.raises(urllib.error.HTTPError) as failure:
            urllib.request.urlopen(request, timeout=10)
        assert failure.value.code == 405


class TestReadiness:
    def test_readyz_transitions_with_check_results(self, server):
        status, _, body = _get(server.url + "/readyz")
        assert status == 200  # no checks registered -> vacuously ready
        assert json.loads(body)["ready"] is True

        server.app.add_readiness_check("warm", lambda: (False, "still loading"))
        status, _, body = _get(server.url + "/readyz")
        assert status == 503
        payload = json.loads(body)
        assert payload["ready"] is False
        assert payload["checks"]["warm"] == {"ok": False, "detail": "still loading"}

        server.app.add_readiness_check("warm", lambda: True)
        status, _, body = _get(server.url + "/readyz")
        assert status == 200
        assert json.loads(body)["checks"]["warm"]["ok"] is True

    def test_a_raising_check_counts_as_not_ready(self, server):
        def broken():
            raise RuntimeError("boom")

        server.app.add_readiness_check("broken", broken)
        status, _, body = _get(server.url + "/readyz")
        assert status == 503
        assert "boom" in json.loads(body)["checks"]["broken"]["detail"]
        server.app.remove_readiness_check("broken")

    def test_store_ready_check_reads_recovered_state(self, tmp_path):
        from repro.semirings import NATURAL
        from repro.store import DocumentStore
        from repro.workloads import random_forest

        store = DocumentStore(NATURAL, directory=tmp_path / "store")
        store.ingest("doc", random_forest(NATURAL, num_trees=1, depth=2, fanout=2, seed=2))
        ok, detail = store_ready_check(store)()
        assert ok
        assert "1 document(s)" in detail

    def test_plan_cache_ready_check_requires_warm_cache(self):
        from repro.exec import PlanCache
        from repro.semirings import NATURAL

        cache = PlanCache(maxsize=4)
        ok, _ = plan_cache_ready_check(cache)()
        assert not ok
        cache.get("($S)/*", NATURAL, env_types={"S": "forest"})
        ok, detail = plan_cache_ready_check(cache)()
        assert ok
        assert "1 cached plan(s)" in detail


class TestWsgiMountability:
    def test_app_is_callable_without_a_server(self):
        # The future repro.serve mounts TelemetryApp as plain WSGI: calling
        # the app directly (no socket anywhere) must fully work.
        app = TelemetryApp(MetricsRegistry())
        app.registry.counter("mounted_total").inc(2)
        captured: dict = {}

        def start_response(status, headers):
            captured["status"] = status
            captured["headers"] = dict(headers)

        body = b"".join(
            app({"REQUEST_METHOD": "GET", "PATH_INFO": "/metrics"}, start_response)
        )
        assert captured["status"] == "200 OK"
        assert "mounted_total 2" in body.decode("utf-8")

        body = b"".join(
            app({"REQUEST_METHOD": "HEAD", "PATH_INFO": "/healthz"}, start_response)
        )
        assert body == b""  # HEAD: headers only
        assert captured["status"] == "200 OK"

    def test_handler_errors_become_500_not_crashes(self):
        app = TelemetryApp(MetricsRegistry())
        app.add_readiness_check("x", lambda: True)
        broken_registry = object()  # render_prometheus will choke on this
        app.registry = broken_registry
        captured: dict = {}
        body = b"".join(
            app(
                {"REQUEST_METHOD": "GET", "PATH_INFO": "/metrics"},
                lambda status, headers: captured.update(status=status),
            )
        )
        assert captured["status"].startswith("500")
        assert "error" in json.loads(body)


class TestServeAddress:
    @pytest.mark.parametrize(
        "address, expected",
        [
            ("9100", ("127.0.0.1", 9100)),
            (":9100", ("127.0.0.1", 9100)),
            ("0.0.0.0:9100", ("0.0.0.0", 9100)),
            ("localhost:0", ("localhost", 0)),
        ],
    )
    def test_accepted_forms(self, address, expected):
        assert parse_serve_address(address) == expected

    @pytest.mark.parametrize("address", ["", "abc", "host:port", "1:2:3x", "70000"])
    def test_rejected_forms(self, address):
        with pytest.raises(ValueError):
            parse_serve_address(address)


class TestServerLifecycle:
    def test_start_refreshes_diagnostic_config(self, monkeypatch):
        from repro.obs import profile, qlog

        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "123.5")
        monkeypatch.setenv("REPRO_EVENTS", "on")
        monkeypatch.setenv("REPRO_QLOG", "on")
        try:
            with start_telemetry_server(port=0):
                assert profile.slow_query_ms() == 123.5
                assert events.is_recording()
                assert qlog.is_recording()
        finally:
            monkeypatch.delenv("REPRO_SLOW_QUERY_MS")
            monkeypatch.delenv("REPRO_QLOG")
            profile.refresh_slow_query_config()
            events.refresh_event_config()
            qlog.refresh_qlog_config()

    def test_shutdown_frees_the_port(self):
        live = start_telemetry_server(port=0)
        url = live.url
        live.shutdown()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            urllib.request.urlopen(url + "/healthz", timeout=2)
