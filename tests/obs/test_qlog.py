"""The structured query log: signatures, records, rotation, replay aggregation.

Covers the qlog contract end to end: plan-signature stability (in-process,
cross-process, cross-hash-seed), one-record-per-user-call suppression at
every instrumentation site, ring bounds and capture-file rotation under
concurrent load, bounded per-signature metric cardinality, digest
determinism for every registry semiring, and instrumentation invariance
(armed results byte-identical to disarmed ones).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from types import SimpleNamespace

import pytest

from repro.exec import BatchEvaluator, PlanCache
from repro.obs import qlog
from repro.semirings import BOOLEAN, NATURAL
from repro.uxml import to_paper_notation
from repro.uxquery import prepare_query
from repro.uxquery.engine import plan_signature
from repro.workloads import random_forest

QUERY = "($S)/*/*"


@pytest.fixture(autouse=True)
def _clean_qlog():
    """Every test starts and ends with a disarmed, empty query log."""
    qlog.refresh_qlog_config({})
    qlog.clear_records()
    qlog.clear_signature_stats()
    yield
    qlog.refresh_qlog_config({})
    qlog.clear_records()
    qlog.clear_signature_stats()


def _fake_prepared(signature: str = "sig0000deadbeef0", query: str = "($S)/*"):
    """A stand-in carrying exactly the attributes ``qlog.record`` reads."""
    return SimpleNamespace(
        signature=signature,
        surface=query,
        semiring=SimpleNamespace(name="natural-numbers"),
        env_types={"S": "forest"},
        generated=None,
    )


class TestPlanSignature:
    def test_equal_plans_hash_equally(self):
        first = prepare_query("($S)/a", NATURAL, env_types={"S": "forest"})
        second = prepare_query("($S)/a", NATURAL, env_types={"S": "forest"})
        assert first.signature == second.signature
        assert len(first.signature) == 16
        int(first.signature, 16)  # hex

    def test_textual_spellings_normalize_together(self):
        # The signature hashes the *simplified* NRC form: surface variants
        # that compile to the same plan share a signature.
        short = prepare_query("($S)/a", NATURAL, env_types={"S": "forest"})
        explicit = prepare_query("($S)/child::a", NATURAL, env_types={"S": "forest"})
        assert short.signature == explicit.signature

    def test_semiring_and_env_types_distinguish(self):
        base = prepare_query("($S)/a", NATURAL, env_types={"S": "forest"})
        other_k = prepare_query("($S)/a", BOOLEAN, env_types={"S": "forest"})
        assert base.signature != other_k.signature
        extra_env = prepare_query(
            "($S)/a", NATURAL, env_types={"S": "forest", "T": "forest"}
        )
        assert base.signature != extra_env.signature

    def test_signature_function_matches_prepared_plan(self):
        prepared = prepare_query(QUERY, NATURAL, env_types={"S": "forest"})
        assert prepared.signature == plan_signature(
            prepared.nrc_simplified, NATURAL, prepared.env_types
        )

    def test_signature_stable_across_processes_and_hash_seeds(self):
        script = (
            "from repro.semirings import NATURAL\n"
            "from repro.uxquery import prepare_query\n"
            f"print(prepare_query({QUERY!r}, NATURAL, env_types={{'S': 'forest'}}).signature)\n"
        )
        signatures = set()
        for seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
            )
            output = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, check=True, env=env,
            ).stdout.strip()
            signatures.add(output)
        local = prepare_query(QUERY, NATURAL, env_types={"S": "forest"}).signature
        signatures.add(local)
        assert len(signatures) == 1


class TestResultDigest:
    def test_digest_is_order_independent_and_stable(self, any_semiring):
        forest = random_forest(any_semiring, num_trees=2, depth=3, fanout=2, seed=7)
        prepared = prepare_query(QUERY, any_semiring, {"S": forest})
        result = prepared.evaluate({"S": forest})
        assert qlog.result_digest(result) == qlog.result_digest(result)
        # A batch result (list) digests the per-element digests.
        assert qlog.result_digest([result, result]) != qlog.result_digest(result)

    def test_digests_stable_across_hash_seeds_for_every_registry_semiring(self):
        script = (
            "import json\n"
            "from repro.obs.qlog import result_digest\n"
            "from repro.semirings import available_semirings, get_semiring\n"
            "from repro.uxquery import prepare_query\n"
            "from repro.workloads import random_forest\n"
            "out = {}\n"
            "for name in available_semirings():\n"
            "    s = get_semiring(name)\n"
            "    f = random_forest(s, num_trees=2, depth=3, fanout=2, seed=7)\n"
            f"    p = prepare_query({QUERY!r}, s, {{'S': f}})\n"
            "    out[name] = result_digest(p.evaluate({'S': f}))\n"
            "print(json.dumps(out, sort_keys=True))\n"
        )
        outputs = set()
        for seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = os.pathsep.join(
                filter(None, [os.path.abspath("src"), env.get("PYTHONPATH", "")])
            )
            outputs.add(
                subprocess.run(
                    [sys.executable, "-c", script],
                    capture_output=True, text=True, check=True, env=env,
                ).stdout.strip()
            )
        assert len(outputs) == 1
        assert len(json.loads(next(iter(outputs)))) > 10


class TestRecording:
    def test_disarmed_by_default_and_record_is_a_noop(self):
        assert not qlog.is_recording()
        assert qlog.record(_fake_prepared(), "evaluate", "nrc", 0.001) is None
        assert qlog.recent_records() == []

    def test_armed_engine_evaluate_records_one_entry(self):
        forest = random_forest(NATURAL, num_trees=1, depth=3, fanout=2, seed=3)
        prepared = prepare_query(QUERY, NATURAL, {"S": forest})
        with qlog.recording(True):
            qlog.clear_records()
            prepared.evaluate({"S": forest})
            records = qlog.recent_records()
        assert len(records) == 1
        entry = records[0]
        assert entry["op"] == "evaluate"
        assert entry["sig"] == prepared.signature
        assert entry["semiring"] == NATURAL.name
        assert entry["env_types"] == {"S": "forest"}
        assert entry["rows"] >= 1
        assert entry["ms"] >= 0.0
        assert entry["pid"] == os.getpid()
        assert entry["tid"] == threading.get_ident()
        assert "digest" not in entry  # no capture file armed

    def test_refresh_config_semantics(self, tmp_path):
        qlog.refresh_qlog_config({qlog.ENV_QLOG: "on"})
        assert qlog.is_recording() and qlog.capture_path() is None
        path = str(tmp_path / "cap.jsonl")
        qlog.refresh_qlog_config({qlog.ENV_QLOG_FILE: path})
        assert qlog.is_recording() and qlog.capture_path() == path
        # An explicit off wins over an armed capture path.
        qlog.refresh_qlog_config({qlog.ENV_QLOG: "off", qlog.ENV_QLOG_FILE: path})
        assert not qlog.is_recording()
        qlog.refresh_qlog_config({})
        assert not qlog.is_recording() and qlog.capture_path() is None

    def test_capture_file_records_carry_digests(self, tmp_path):
        path = tmp_path / "cap.jsonl"
        forest = random_forest(NATURAL, num_trees=1, depth=2, fanout=2, seed=4)
        prepared = prepare_query(QUERY, NATURAL, {"S": forest})
        qlog.refresh_qlog_config({qlog.ENV_QLOG_FILE: str(path)})
        result = prepared.evaluate({"S": forest})
        qlog.refresh_qlog_config({})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 1
        assert lines[0]["digest"] == qlog.result_digest(result)
        assert lines[0]["q"] == str(prepared.surface)

    def test_cache_hit_flag_transitions(self):
        forest = random_forest(NATURAL, num_trees=1, depth=2, fanout=2, seed=5)
        cache = PlanCache(maxsize=4)
        with qlog.recording(True):
            qlog.clear_records()
            cold = cache.get(QUERY, NATURAL, env_types={"S": "forest"})
            cold.evaluate({"S": forest})
            warm = cache.get(QUERY, NATURAL, env_types={"S": "forest"})
            warm.evaluate({"S": forest})
            records = qlog.recent_records()
        assert [entry["cache_hit"] for entry in records] == [False, True]


class TestOneRecordPerUserCall:
    def test_store_query_owns_its_record(self, tmp_path):
        from repro.store import DocumentStore

        store = DocumentStore(NATURAL, directory=tmp_path / "st")
        forest = random_forest(NATURAL, num_trees=2, depth=2, fanout=2, seed=6)
        store.ingest("doc", forest)
        with qlog.recording(True):
            qlog.clear_records()
            store.query("($S)/*", "doc")
            records = qlog.recent_records()
        assert len(records) == 1
        entry = records[0]
        assert entry["op"] == "store.query"
        assert entry["doc"] == "doc"
        assert entry["pushdown"] in ("full-pushdown", "pushdown", "fallback")
        assert entry["store"]

    def test_store_query_many_owns_its_record(self, tmp_path):
        from repro.store import DocumentStore

        store = DocumentStore(NATURAL, directory=tmp_path / "st")
        for index in range(3):
            store.ingest(
                f"d{index}",
                random_forest(NATURAL, num_trees=1, depth=2, fanout=2, seed=index),
            )
        with qlog.recording(True):
            qlog.clear_records()
            store.query_many("($S)/*", ["d0", "d1", "d2"])
            records = qlog.recent_records()
        assert len(records) == 1
        entry = records[0]
        assert entry["op"] == "store.query_many"
        assert entry["docs"] == ["d0", "d1", "d2"]

    def test_batch_evaluator_owns_its_record(self):
        forests = [
            random_forest(NATURAL, num_trees=1, depth=2, fanout=2, seed=seed)
            for seed in range(3)
        ]
        prepared = prepare_query(QUERY, NATURAL, {"S": forests[0]})
        evaluator = BatchEvaluator(prepared, var="S")
        with qlog.recording(True):
            qlog.clear_records()
            results = evaluator.evaluate_many(forests)
            records = qlog.recent_records()
        assert len(records) == 1
        assert records[0]["op"] == "exec.batch"
        assert records[0]["rows"] == len(results) == 3

    def test_sharded_evaluator_owns_its_record(self):
        from repro.exec import ShardedEvaluator

        forest = random_forest(NATURAL, num_trees=4, depth=2, fanout=2, seed=8)
        prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
        evaluator = ShardedEvaluator(prepared, num_shards=2)
        with qlog.recording(True):
            qlog.clear_records()
            evaluator.evaluate(forest)
            records = qlog.recent_records()
        assert len(records) == 1
        assert records[0]["op"] == "exec.shard"

    def test_ivm_apply_owns_its_record(self):
        from repro.ivm import Delta
        from repro.uxml import TreeBuilder

        builder = TreeBuilder(NATURAL)
        forest = random_forest(NATURAL, num_trees=2, depth=2, fanout=2, seed=9)
        prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
        view = prepared.materialize(forest, document_var="S")
        delta = Delta.insertion(NATURAL, builder.tree("extra"), 1)
        with qlog.recording(True):
            qlog.clear_records()
            view.apply(delta)
            records = qlog.recent_records()
        assert len(records) == 1
        assert records[0]["op"] == "ivm.apply"
        assert records[0]["method"] in ("ivm-incremental", "ivm-recompute")

    def test_suppress_scope_drops_nested_records(self):
        with qlog.recording(True):
            qlog.clear_records()
            with qlog.suppress():
                assert qlog.suppressed()
                assert qlog.record(_fake_prepared(), "evaluate", "nrc", 0.001) is None
            assert not qlog.suppressed()
            assert qlog.record(_fake_prepared(), "evaluate", "nrc", 0.001) is not None
        assert len(qlog.recent_records()) == 1


class TestRingAndRotation:
    def test_ring_bounded_under_threaded_load(self):
        previous = qlog.ring_capacity()
        qlog.set_ring_capacity(64)
        try:
            fake = _fake_prepared()
            with qlog.recording(True):
                with ThreadPoolExecutor(max_workers=8) as pool:
                    list(
                        pool.map(
                            lambda _: qlog.record(fake, "evaluate", "nrc", 0.0005),
                            range(1000),
                        )
                    )
            records = qlog.recent_records()
            assert len(records) == 64
            sequences = [entry["seq"] for entry in records]
            assert sequences == sorted(sequences)
            assert len(set(sequences)) == 64
        finally:
            qlog.set_ring_capacity(previous)

    def test_rotation_at_size_boundary_keeps_generations(self, tmp_path):
        path = tmp_path / "cap.jsonl"
        qlog.refresh_qlog_config(
            {
                qlog.ENV_QLOG_FILE: str(path),
                qlog.ENV_QLOG_MAX_BYTES: "2000",
                qlog.ENV_QLOG_KEEP: "2",
            }
        )
        fake = _fake_prepared()
        for _ in range(100):
            qlog.record(fake, "evaluate", "nrc", 0.0)
        qlog.refresh_qlog_config({})
        generations = [path, tmp_path / "cap.jsonl.1", tmp_path / "cap.jsonl.2"]
        assert generations[1].exists() and generations[2].exists()
        for generation in generations:
            if not generation.exists():
                continue
            text = generation.read_text()
            for line in text.splitlines():
                json.loads(line)  # every retained line is intact JSON
            # A rotation triggers on the append that crosses the bound, so a
            # file never exceeds max_bytes by more than one record.
            assert len(text.encode()) < 2000 + 600
        # Rotation discards: far fewer than all 100 records survive.
        survivors = sum(
            len(generation.read_text().splitlines())
            for generation in generations
            if generation.exists()
        )
        assert survivors < 100

    def test_concurrent_thread_writers_produce_intact_jsonl(self, tmp_path):
        path = tmp_path / "cap.jsonl"
        qlog.refresh_qlog_config({qlog.ENV_QLOG_FILE: str(path)})
        fake = _fake_prepared()
        with ThreadPoolExecutor(max_workers=4) as pool:
            list(
                pool.map(
                    lambda _: qlog.record(fake, "evaluate", "nrc", 0.0005),
                    range(200),
                )
            )
        qlog.refresh_qlog_config({})
        lines = path.read_text().splitlines()
        assert len(lines) == 200
        for line in lines:
            entry = json.loads(line)
            assert entry["sig"] == fake.signature

    @pytest.mark.skipif(
        not hasattr(os, "fork"), reason="fork-based process pool required"
    )
    def test_process_pool_workers_capture_to_the_shared_file(self, tmp_path):
        import multiprocessing

        path = tmp_path / "cap.jsonl"
        qlog.refresh_qlog_config({qlog.ENV_QLOG_FILE: str(path)})
        try:
            context = multiprocessing.get_context("fork")
            with ProcessPoolExecutor(max_workers=2, mp_context=context) as pool:
                worker_pids = set(pool.map(_pool_capture_worker, range(6)))
        finally:
            qlog.refresh_qlog_config({})
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 6
        recorded_pids = {entry["pid"] for entry in lines}
        assert recorded_pids <= worker_pids
        assert os.getpid() not in recorded_pids


def _pool_capture_worker(index: int) -> int:
    """Runs in a forked pool worker: the inherited qlog arming must capture."""
    forest = random_forest(NATURAL, num_trees=1, depth=2, fanout=2, seed=index)
    prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
    prepared.evaluate({"S": forest})
    return os.getpid()


class TestSignatureAccounting:
    def test_cardinality_bounded_with_other_overflow(self):
        with qlog.recording(True):
            for index in range(qlog.SIGNATURE_LIMIT + 8):
                qlog.record(
                    _fake_prepared(signature=f"sig{index:013d}"),
                    "evaluate",
                    "nrc",
                    0.001,
                )
        stats = qlog.signature_stats()
        labels = {entry["signature"] for entry in stats}
        assert qlog.OTHER_SIGNATURE in labels
        assert len(labels) <= qlog.SIGNATURE_LIMIT + 1
        overflow = next(
            entry for entry in stats if entry["signature"] == qlog.OTHER_SIGNATURE
        )
        assert overflow["count"] == 8
        assert overflow["query"] is None  # no single text represents "other"

    def test_signature_stats_sort_and_limit(self):
        with qlog.recording(True):
            for _ in range(3):
                qlog.record(_fake_prepared("sigaaaaaaaaaaaaa"), "evaluate", "nrc", 0.001)
            qlog.record(_fake_prepared("sigbbbbbbbbbbbbb"), "evaluate", "nrc", 0.1)
        by_count = qlog.signature_stats(sort="count")
        assert by_count[0]["signature"] == "sigaaaaaaaaaaaaa"
        assert by_count[0]["count"] == 3
        by_total = qlog.signature_stats(sort="total", limit=1)
        assert len(by_total) == 1
        assert by_total[0]["signature"] == "sigbbbbbbbbbbbbb"
        assert by_total[0]["p95_ms"] >= by_total[0]["mean_ms"] * 0.5

    def test_aggregate_records_exact_quantiles(self):
        records = [
            {"sig": "aaa", "q": "($S)/*", "semiring": "n", "op": "evaluate", "ms": 1.0, "rows": 2},
            {"sig": "aaa", "q": "($S)/*", "semiring": "n", "op": "evaluate", "ms": 3.0, "rows": 2},
            {"sig": "bbb", "q": "($S)/a", "semiring": "n", "op": "store.query", "ms": 10.0, "rows": 1},
        ]
        aggregate = qlog.aggregate_records(records)
        assert aggregate["aaa"]["count"] == 2
        assert aggregate["aaa"]["total_ms"] == pytest.approx(4.0)
        assert aggregate["aaa"]["mean_ms"] == pytest.approx(2.0)
        assert aggregate["aaa"]["p95_ms"] == pytest.approx(3.0)
        assert aggregate["aaa"]["rows"] == 4
        assert aggregate["bbb"]["ops"] == {"store.query": 1}
        report = qlog.render_report(aggregate)
        assert "aaa" in report and "($S)/a" in report
        compare = qlog.render_compare_report(aggregate, aggregate)
        assert "1.00" in compare  # self-compare ratio


class TestInstrumentationInvariance:
    def test_armed_results_byte_identical_for_every_semiring(
        self, any_semiring, tmp_path
    ):
        forest = random_forest(any_semiring, num_trees=2, depth=3, fanout=2, seed=21)
        prepared = prepare_query(QUERY, any_semiring, {"S": forest})
        baseline = prepared.evaluate({"S": forest})
        path = tmp_path / "cap.jsonl"
        qlog.refresh_qlog_config({qlog.ENV_QLOG_FILE: str(path)})
        try:
            armed = prepared.evaluate({"S": forest})
        finally:
            qlog.refresh_qlog_config({})
        assert armed == baseline
        assert to_paper_notation(armed) == to_paper_notation(baseline)
        captured = [json.loads(line) for line in path.read_text().splitlines()]
        assert captured and captured[-1]["digest"] == qlog.result_digest(baseline)
