"""Span tracing: arming, nesting, exports, cross-process reassembly."""

from __future__ import annotations

import json
import os

from repro.obs.trace import (
    Tracer,
    export_chrome,
    export_jsonl,
    is_active,
    span,
    tracing,
    worker_trace,
)
from repro.obs import trace as trace_module


class TestDisarmed:
    def test_span_is_the_shared_noop(self):
        assert not is_active()
        first = span("anything", attr=1)
        second = span("else")
        assert first is second  # one shared null span, no allocation
        with first as live:
            live.annotate(ignored=True)  # all no-ops

    def test_trace_payload_is_none(self):
        assert trace_module.trace_payload() is None


class TestArmed:
    def test_spans_nest_and_carry_attrs(self):
        with tracing() as tracer:
            with span("outer", kind="test") as outer:
                outer.annotate(extra=1)
                with span("inner"):
                    pass
        assert not is_active()
        names = {s.name: s for s in tracer.spans}
        assert set(names) == {"outer", "inner"}
        outer_span, inner_span = names["outer"], names["inner"]
        assert inner_span.parent_id == outer_span.span_id
        assert outer_span.parent_id is None
        assert outer_span.trace_id == inner_span.trace_id == tracer.trace_id
        assert outer_span.attrs == {"kind": "test", "extra": 1}
        assert outer_span.duration >= inner_span.duration >= 0.0

    def test_exception_is_recorded_and_stack_unwinds(self):
        with tracing() as tracer:
            try:
                with span("failing"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            with span("after"):
                pass
        failing = next(s for s in tracer.spans if s.name == "failing")
        after = next(s for s in tracer.spans if s.name == "after")
        assert failing.attrs["error"] == "RuntimeError"
        assert after.parent_id is None  # the failed span popped its frame

    def test_nested_tracing_restores_previous_tracer(self):
        with tracing() as outer_tracer:
            with tracing() as inner_tracer:
                with span("inner-only"):
                    pass
            with span("outer-only"):
                pass
        assert [s.name for s in inner_tracer.spans] == ["inner-only"]
        assert [s.name for s in outer_tracer.spans] == ["outer-only"]


class TestSampling:
    def test_rate_one_always_keeps_the_trace(self):
        with tracing(sample_rate=1.0) as tracer:
            with span("kept"):
                pass
        assert tracer.sampled and not tracer.promoted
        assert [s.name for s in tracer.spans] == ["kept"]

    def test_sampled_out_scope_records_no_spans_but_keeps_its_id(self):
        with tracing(sample_rate=0.0) as tracer:
            assert trace_module.current_trace_id() == tracer.trace_id
            assert span("dropped") is trace_module._NULL
        assert tracer.spans == []
        assert not tracer.sampled and not tracer.promoted

    def test_sampled_out_scope_ships_no_worker_payload(self):
        with tracing(sample_rate=0.0):
            assert trace_module.trace_payload() is None
        with tracing(sample_rate=1.0):
            assert trace_module.trace_payload() is not None

    def test_invalid_sample_rate_is_rejected(self):
        import pytest

        with pytest.raises(ValueError, match="sample_rate"):
            tracing(sample_rate=1.5)

    def test_current_trace_id_is_none_when_disarmed(self):
        assert trace_module.current_trace_id() is None

    def test_tail_promotion_rescues_a_slow_sampled_out_trace(self, monkeypatch):
        import time

        from repro.obs import profile

        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "5")
        profile.refresh_slow_query_config()
        try:
            with tracing(sample_rate=0.0) as tracer:
                time.sleep(0.02)  # cross the 5ms threshold
        finally:
            monkeypatch.delenv("REPRO_SLOW_QUERY_MS")
            profile.refresh_slow_query_config()
        assert tracer.sampled and tracer.promoted
        assert [s.name for s in tracer.spans] == ["trace.promoted-root"]
        root = tracer.spans[0]
        assert root.attrs["promoted"] is True
        assert root.attrs["sample_rate"] == 0.0
        assert root.duration >= 0.005
        assert root.trace_id == tracer.trace_id

    def test_fast_sampled_out_trace_stays_dropped(self, monkeypatch):
        from repro.obs import profile

        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "60000")
        profile.refresh_slow_query_config()
        try:
            with tracing(sample_rate=0.0) as tracer:
                pass
        finally:
            monkeypatch.delenv("REPRO_SLOW_QUERY_MS")
            profile.refresh_slow_query_config()
        assert not tracer.sampled and not tracer.promoted
        assert tracer.spans == []

    def test_no_promotion_when_threshold_disarmed(self):
        import time

        from repro.obs import profile

        assert profile.slow_query_ms() is None  # default: disarmed
        with tracing(sample_rate=0.0) as tracer:
            time.sleep(0.005)
        assert not tracer.sampled
        assert tracer.spans == []


class TestExport:
    def _spans(self):
        with tracing() as tracer:
            with span("a", n=1):
                with span("b"):
                    pass
        return tracer.spans

    def test_jsonl_lines_parse(self):
        spans = self._spans()
        lines = export_jsonl(spans).splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert {record["name"] for record in records} == {"a", "b"}
        for record in records:
            assert record["trace_id"] == spans[0].trace_id
            assert record["duration"] >= 0.0

    def test_chrome_trace_events(self):
        payload = json.loads(export_chrome(self._spans()))
        events = payload["traceEvents"]
        assert len(events) == 2
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["dur"] >= 0
            assert "trace_id" in event["args"]


class TestCrossProcess:
    def test_worker_payload_reassembles_by_trace_id(self):
        tracer = Tracer()
        payload = tracer.payload()
        # Simulate the worker side: arm from the payload, produce spans,
        # flush them to the sidecar in one append on exit.
        with worker_trace(payload):
            with span("exec.worker.task", var="S"):
                pass
        tracer.collect()
        assert [s.name for s in tracer.spans] == ["exec.worker.task"]
        worker_span = tracer.spans[0]
        assert worker_span.trace_id == tracer.trace_id
        assert worker_span.attrs == {"var": "S"}
        # The sidecar is consumed.
        assert tracer._sidecar is None

    def test_worker_trace_with_none_payload_is_inert(self):
        with worker_trace(None):
            assert not is_active()

    def test_process_pool_spans_cross_the_boundary(self):
        from concurrent.futures import ProcessPoolExecutor

        from repro.exec import BatchEvaluator
        from repro.semirings import NATURAL
        from repro.uxquery import prepare_query
        from repro.workloads import random_forest

        documents = [
            random_forest(NATURAL, num_trees=2, depth=2, fanout=2, seed=70 + i)
            for i in range(3)
        ]
        prepared = prepare_query("($S)/*", NATURAL, {"S": documents[0]})
        evaluator = BatchEvaluator(prepared)
        expected = evaluator.evaluate_many(documents)
        with tracing() as tracer:
            with ProcessPoolExecutor(max_workers=2) as executor:
                results = evaluator.evaluate_many(documents, executor=executor)
        assert results == expected
        worker_spans = [s for s in tracer.spans if s.name == "exec.worker.task"]
        assert len(worker_spans) == len(documents)
        assert {s.trace_id for s in worker_spans} == {tracer.trace_id}
        assert any(s.pid != os.getpid() for s in worker_spans)
        fan_out = [s for s in tracer.spans if s.name == "exec.batch.fan_out"]
        assert fan_out and fan_out[0].attrs["pool"] == "process"
        # Worker spans hang off the fan-out span that shipped the payload.
        assert {s.parent_id for s in worker_spans} == {fan_out[0].span_id}
