"""Per-operator profiling under all three evaluators + the slow-query log."""

from __future__ import annotations

import json

import pytest

from repro.errors import UXQueryEvalError
from repro.obs import profile as profile_module
from repro.obs.profile import (
    clear_slow_queries,
    profile_evaluate,
    refresh_slow_query_config,
    slow_queries,
    slow_query_ms,
)
from repro.semirings import NATURAL, PROVENANCE
from repro.uxquery import prepare_query
from repro.workloads import random_forest

METHODS = ("nrc-codegen", "nrc", "nrc-interp")


@pytest.fixture
def forest():
    return random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=21)


class TestProfileEvaluate:
    @pytest.mark.parametrize("method", METHODS)
    def test_result_matches_unprofiled_evaluation(self, forest, method):
        prepared = prepare_query("($S)/*/*", NATURAL, {"S": forest})
        expected = prepared.evaluate({"S": forest}, method=method)
        result, report = profile_evaluate(prepared, {"S": forest}, method=method)
        assert result == expected
        assert report.method == method
        assert report.total_s >= 0.0

    @pytest.mark.parametrize("method", METHODS)
    def test_operators_record_calls_and_rows(self, forest, method):
        prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
        result, report = profile_evaluate(prepared, {"S": forest}, method=method)
        payload = report.to_dict()
        assert payload["operators"], "profile must contain an operator tree"

        def flatten(nodes):
            for node in nodes:
                yield node
                yield from flatten(node["children"])

        ops = list(flatten(payload["operators"]))
        timed = [op for op in ops if not op["fused"]]
        assert any(op["calls"] > 0 for op in timed)
        assert all(op["time_ms"] >= 0.0 for op in timed)
        # Row counts surface real cardinalities somewhere in the tree.
        assert any(op["rows"] > 0 for op in timed)
        json.dumps(payload)  # --analyze output must be serializable

    def test_codegen_profile_marks_fused_loops(self, forest):
        prepared = prepare_query("($S)/*/*", NATURAL, {"S": forest})
        _result, report = profile_evaluate(prepared, {"S": forest}, method="nrc-codegen")
        assert report.generated is True
        payload = report.to_dict()

        def flatten(nodes):
            for node in nodes:
                yield node
                yield from flatten(node["children"])

        fused = [op for op in flatten(payload["operators"]) if op["fused"]]
        assert fused, "big unions must appear as fused loop operators"
        assert any(op["calls"] > 0 for op in fused)  # iteration counts
        assert "fused" in report.render()

    def test_codegen_decline_falls_back_with_reason(self, forest):
        prepared = prepare_query("($S)//b", NATURAL, {"S": forest})
        assert prepared.generated is None  # srt is outside the codegen fragment
        expected = prepared.evaluate({"S": forest}, method="nrc-codegen")
        result, report = profile_evaluate(prepared, {"S": forest}, method="nrc-codegen")
        assert result == expected
        assert report.generated is False
        assert "srt" in (report.fallback_reason or "")
        assert "declined" in report.render()

    def test_profiling_never_touches_the_production_programs(self, forest):
        document = random_forest(PROVENANCE, 2, 2, 2, seed=3)
        prepared = prepare_query("($S)/*", PROVENANCE, {"S": document})
        production = prepared.generated
        profile_evaluate(prepared, {"S": document})
        assert prepared.generated is production  # same uninstrumented object
        assert "_PREC" not in prepared.generated.source

    def test_unprofilable_method_is_rejected(self, forest):
        prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
        with pytest.raises(UXQueryEvalError, match="cannot profile"):
            profile_evaluate(prepared, {"S": forest}, method="direct")

    def test_interp_hook_disarms_after_profiling(self, forest):
        from repro.nrc import eval as interp

        prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
        profile_evaluate(prepared, {"S": forest}, method="nrc-interp")
        assert interp._PROFILE is None


class TestSlowQueryLog:
    @pytest.fixture(autouse=True)
    def _restore_config(self):
        yield
        refresh_slow_query_config({})
        clear_slow_queries()

    def test_disarmed_by_default(self):
        refresh_slow_query_config({})
        assert slow_query_ms() is None

    def test_threshold_records_query_and_stage_timings(self, forest):
        refresh_slow_query_config({"REPRO_SLOW_QUERY_MS": "0"})
        clear_slow_queries()
        prepared = prepare_query("($S)/*/*", NATURAL, {"S": forest})
        prepared.evaluate({"S": forest})
        entries = slow_queries()
        assert entries, "a 0ms threshold must catch every query"
        entry = entries[-1]
        assert entry["query"] == "($S)/child::*/child::*"
        assert entry["method"] == "nrc-codegen"
        assert entry["semiring"] == NATURAL.name
        assert entry["duration_ms"] >= 0.0
        assert "typecheck" in entry["stage_timings_ms"]
        json.dumps(entry)  # JSONL-appendable

    def test_slow_queries_append_to_the_log_file(self, forest, tmp_path):
        log_path = tmp_path / "slow.jsonl"
        refresh_slow_query_config(
            {"REPRO_SLOW_QUERY_MS": "0", "REPRO_SLOW_QUERY_LOG": str(log_path)}
        )
        clear_slow_queries()
        prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
        prepared.evaluate({"S": forest})
        prepared.evaluate({"S": forest})
        lines = log_path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        for line in lines:
            assert json.loads(line)["query"] == "($S)/child::*"

    def test_slow_query_counter_publishes_to_the_registry(self, forest):
        counter = profile_module._SLOW_COUNTER
        before = counter.value()
        refresh_slow_query_config({"REPRO_SLOW_QUERY_MS": "0"})
        clear_slow_queries()
        prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
        prepared.evaluate({"S": forest})
        assert counter.value() == before + 1

    def test_bad_threshold_is_ignored(self):
        refresh_slow_query_config({"REPRO_SLOW_QUERY_MS": "not-a-number"})
        assert slow_query_ms() is None


class TestThresholdStaleness:
    """Regression: the env var must be honored even when set *after* import.

    The serving path reads the threshold through ``slow_query_threshold()``,
    which re-checks the environment every ``_SLOW_REFRESH_EVERY`` calls —
    a long-lived process no longer needs a restart (or an explicit
    ``refresh_slow_query_config()`` call) to arm the slow-query log.
    """

    @pytest.fixture(autouse=True)
    def _restore_config(self, monkeypatch):
        monkeypatch.delenv("REPRO_SLOW_QUERY_MS", raising=False)
        yield
        refresh_slow_query_config({})
        clear_slow_queries()

    def test_env_change_is_picked_up_within_the_refresh_window(self, monkeypatch):
        refresh_slow_query_config({})
        assert slow_query_ms() is None
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "250")
        seen = {
            profile_module.slow_query_threshold()
            for _ in range(profile_module._SLOW_REFRESH_EVERY + 1)
        }
        assert 250.0 in seen  # the periodic re-check armed the threshold
        assert profile_module.slow_query_threshold() == 250.0

    def test_evaluate_path_arms_without_an_explicit_refresh(self, forest, monkeypatch):
        refresh_slow_query_config({})
        clear_slow_queries()
        prepared = prepare_query("($S)/*", NATURAL, {"S": forest})
        monkeypatch.setenv("REPRO_SLOW_QUERY_MS", "0")
        # Push the serving path across the refresh window; no manual
        # refresh_slow_query_config() anywhere.
        for _ in range(profile_module._SLOW_REFRESH_EVERY + 2):
            prepared.evaluate({"S": forest})
        assert slow_queries(), "the env var set after import must take effect"

    def test_threshold_can_also_disarm_in_flight(self, monkeypatch):
        refresh_slow_query_config({"REPRO_SLOW_QUERY_MS": "100"})
        assert profile_module.slow_query_threshold() == 100.0
        monkeypatch.delenv("REPRO_SLOW_QUERY_MS", raising=False)
        for _ in range(profile_module._SLOW_REFRESH_EVERY + 1):
            value = profile_module.slow_query_threshold()
        assert value is None
