"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.semirings import (
    BOOLEAN,
    CLEARANCE,
    FUZZY,
    LINEAGE,
    NATURAL,
    POSBOOL,
    PROVENANCE,
    TROPICAL,
    VITERBI,
    WHY,
    DivisorLatticeSemiring,
    ProductSemiring,
    SubsetLatticeSemiring,
    diff_of,
)
from repro.uxml import TreeBuilder

#: Every shipped semiring, used by parametrized axiom / lifting tests.
#: The Diff(K) ring-completion constructions ride along so the IVM layer's
#: difference pairs are held to the same laws as every other semiring.
ALL_SEMIRINGS = [
    BOOLEAN,
    NATURAL,
    PROVENANCE,
    POSBOOL,
    CLEARANCE,
    TROPICAL,
    VITERBI,
    FUZZY,
    WHY,
    LINEAGE,
    SubsetLatticeSemiring({"r1", "r2", "r3"}),
    DivisorLatticeSemiring(30),
    ProductSemiring(BOOLEAN, NATURAL),
    diff_of(BOOLEAN),
    diff_of(NATURAL),
    diff_of(PROVENANCE),
]

#: Semirings whose elements are convenient for exact query-result comparisons.
EXACT_SEMIRINGS = [BOOLEAN, NATURAL, PROVENANCE, POSBOOL, CLEARANCE]


@pytest.fixture(params=ALL_SEMIRINGS, ids=lambda s: s.name)
def any_semiring(request):
    """Parametrize a test over every shipped semiring."""
    return request.param


@pytest.fixture
def nat_builder():
    """A tree builder over the natural-number (bag) semiring."""
    return TreeBuilder(NATURAL)


@pytest.fixture
def prov_builder():
    """A tree builder over the provenance-polynomial semiring."""
    return TreeBuilder(PROVENANCE)


@pytest.fixture
def bool_builder():
    """A tree builder over the Boolean semiring."""
    return TreeBuilder(BOOLEAN)


@pytest.fixture
def figure1_environment(prov_builder):
    """The Figure 1 source bound to ``$S``."""
    from repro.paperdata import figure1_source

    return {"S": figure1_source()}
