"""Incomplete K-UXML: possible worlds and strong representation systems (Section 5)."""

from __future__ import annotations

import pytest

from repro.errors import PossibleWorldsError
from repro.incomplete import (
    apply_valuation,
    boolean_valuations,
    check_strong_representation,
    mod_boolean,
    mod_natural,
    natural_valuations,
    posbool_representation,
    possible_worlds,
    representation_tokens,
    valuations_over,
)
from repro.paperdata import section5_query, section5_representation
from repro.semirings import BOOLEAN, CLEARANCE, NATURAL, POSBOOL, PROVENANCE
from repro.uxml import TreeBuilder


class TestValuationEnumeration:
    def test_boolean_valuations(self):
        valuations = list(boolean_valuations(["x", "y"]))
        assert len(valuations) == 4
        assert {"x": False, "y": True} in valuations

    def test_natural_valuations(self):
        assert len(list(natural_valuations(["x", "y"], 2))) == 9

    def test_valuations_over_explicit_values(self):
        assert len(list(valuations_over(["x"], ["P", "S"]))) == 2

    def test_representation_tokens(self):
        assert representation_tokens(section5_representation()) == frozenset({"y1", "y2", "y3"})

    def test_posbool_representations_supported(self):
        rep = posbool_representation(section5_representation())
        assert rep.semiring == POSBOOL
        assert representation_tokens(rep) == frozenset({"y1", "y2", "y3"})

    def test_other_semirings_rejected(self, nat_builder):
        with pytest.raises(PossibleWorldsError):
            representation_tokens(nat_builder.forest(nat_builder.leaf("a")))


class TestSection5Example:
    def test_boolean_worlds_count_matches_paper(self):
        """Mod_B(v) of the Section 5 representation has exactly six worlds."""
        worlds = mod_boolean(section5_representation())
        assert len(worlds) == 6

    def test_all_worlds_are_boolean_uxml(self):
        for world in mod_boolean(section5_representation()):
            assert world.semiring == BOOLEAN

    def test_world_for_specific_valuation(self, bool_builder):
        """The valuation y1 -> true, y2, y3 -> false keeps only the right-hand branch."""
        b = bool_builder
        world = apply_valuation(
            section5_representation(),
            {"y1": True, "y2": False, "y3": False},
            BOOLEAN,
        )
        expected = b.forest(
            b.tree(
                "a",
                b.tree("b", b.tree("a", b.leaf("d"))),
                b.tree("c", b.tree("d", b.tree("a", b.leaf("b")))),
            )
        )
        assert world == expected

    def test_bag_worlds_allow_repetition(self):
        """Mod_N includes worlds in which the c children are repeated."""
        worlds = mod_natural(section5_representation(), max_value=2)
        assert len(worlds) > 6
        repetition_found = False
        for world in worlds:
            for tree in world:
                for subtree in tree.subtrees():
                    if any(annotation == 2 for annotation in subtree.children.annotations()):
                        repetition_found = True
        assert repetition_found

    def test_strong_representation_for_booleans(self):
        report = check_strong_representation(
            section5_query(), "T", section5_representation(), BOOLEAN
        )
        assert report["holds"]
        assert report["num_valuations"] == 8
        assert len(report["worlds_query_then_specialize"]) == 5

    def test_strong_representation_with_posbool(self):
        rep = posbool_representation(section5_representation())
        report = check_strong_representation(section5_query(), "T", rep, BOOLEAN)
        assert report["holds"]

    def test_strong_representation_for_bags(self):
        valuations = list(natural_valuations(["y1", "y2", "y3"], 1))
        report = check_strong_representation(
            section5_query(), "T", section5_representation(), NATURAL, valuations
        )
        assert report["holds"]

    def test_strong_representation_for_clearance_lattice(self):
        """PosBool-style strong representation also works for distributive lattices."""
        valuations = list(valuations_over(["y1", "y2", "y3"], ["P", "S", "0"]))
        report = check_strong_representation(
            section5_query(), "T", section5_representation(), CLEARANCE, valuations
        )
        assert report["holds"]

    def test_default_valuations_require_boolean_target(self):
        with pytest.raises(PossibleWorldsError):
            check_strong_representation(
                section5_query(), "T", section5_representation(), NATURAL
            )


class TestGenericMachinery:
    def test_possible_worlds_with_explicit_valuations(self, prov_builder):
        b = prov_builder
        rep = b.forest(b.leaf("a") @ "x")
        worlds = possible_worlds(rep, NATURAL, [{"x": 0}, {"x": 1}, {"x": 2}])
        assert len(worlds) == 3

    def test_strong_representation_on_random_forest(self):
        from repro.workloads import token_annotated_forest

        rep = token_annotated_forest(num_trees=1, depth=2, fanout=2, seed=3)
        report = check_strong_representation("element out { $S/* }", "S", rep, BOOLEAN)
        assert report["holds"]
