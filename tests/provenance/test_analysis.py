"""Reading N[X] provenance: specialization, witnesses, lineage, size measures."""

from __future__ import annotations

import pytest

from repro.errors import AnnotationError
from repro.paperdata import figure1_query, figure1_source, figure5_expected_q
from repro.provenance import (
    event_expression,
    lineage,
    max_polynomial_size,
    minimal_witnesses,
    polynomial_sizes,
    proposition2_bound,
    required_tokens,
    specialize,
    specialize_tree,
    tokens_used,
    why_provenance,
)
from repro.semirings import BOOLEAN, NATURAL, Lineage, Polynomial, WhyProvenance
from repro.uxquery import evaluate_query

POLY = Polynomial.parse


@pytest.fixture
def figure1_answer():
    return evaluate_query(figure1_query(), figure1_source().semiring, {"S": figure1_source()})


class TestSpecialization:
    def test_specialize_forest_to_bags(self, figure1_answer, nat_builder):
        valuation = {"x1": 1, "x2": 1, "y1": 1, "y2": 2, "y3": 1, "z": 1}
        bag_children = specialize(figure1_answer.children, valuation, NATURAL)
        assert bag_children.annotation(nat_builder.leaf("d")) == 3
        assert bag_children.annotation(nat_builder.leaf("e")) == 1

    def test_specialize_tree_to_booleans(self, figure1_answer, bool_builder):
        valuation = {"x1": False, "x2": True, "y1": True, "y2": False, "y3": True, "z": True}
        bool_tree = specialize_tree(figure1_answer, valuation, BOOLEAN)
        assert bool_tree.children.annotation(bool_builder.leaf("d")) is False
        assert bool_tree.children.annotation(bool_builder.leaf("e")) is True

    def test_tokens_used(self, figure1_answer):
        assert tokens_used(figure1_answer) == frozenset({"x1", "x2", "y1", "y2", "y3", "z"})
        assert tokens_used(POLY("a*b + c")) == frozenset({"a", "b", "c"})

    def test_tokens_used_requires_polynomials(self, nat_builder):
        with pytest.raises(AnnotationError):
            tokens_used(nat_builder.forest(nat_builder.leaf("a") @ 2))


class TestProvenanceViews:
    def test_required_tokens(self):
        assert required_tokens(POLY("x*y + x*z")) == frozenset({"x"})
        assert required_tokens(POLY("x + y")) == frozenset()
        assert required_tokens(Polynomial.zero()) == frozenset()

    def test_minimal_witnesses(self):
        witnesses = minimal_witnesses(POLY("x*y + x"))
        assert witnesses == frozenset({frozenset({"x"})})

    def test_why_provenance_keeps_all_monomials(self):
        assert why_provenance(POLY("x*y + x")) == WhyProvenance([["x", "y"], ["x"]])

    def test_lineage_collects_all_tokens(self):
        assert lineage(POLY("x*y + z")) == Lineage(["x", "y", "z"])
        assert lineage(Polynomial.zero()) == Lineage.absent()

    def test_event_expression(self):
        expr = event_expression(POLY("x^2*y + 2*x"))
        assert expr.implicants == frozenset({frozenset({"x"})})

    def test_figure5_tuple_reading(self):
        """The (d, c) tuple requires x2 in every derivation but x1 and x4 only alternatively."""
        annotation = figure5_expected_q().annotation(("d", "c"))
        assert required_tokens(annotation) == frozenset({"x2"})
        assert minimal_witnesses(annotation) == frozenset(
            {frozenset({"x1", "x2"}), frozenset({"x2", "x4"})}
        )


class TestSizeMeasures:
    def test_polynomial_sizes_of_answer(self, figure1_answer):
        sizes = polynomial_sizes(figure1_answer.children)
        assert len(sizes) == 2
        assert max_polynomial_size(figure1_answer.children) == max(sizes)

    def test_sizes_require_polynomials(self, nat_builder):
        with pytest.raises(AnnotationError):
            polynomial_sizes(nat_builder.forest(nat_builder.leaf("a") @ 2))

    def test_proposition2_bound_monotone(self):
        assert proposition2_bound(10, 3) <= proposition2_bound(20, 3)
        assert proposition2_bound(10, 3) <= proposition2_bound(10, 4)

    def test_figure1_sizes_respect_bound(self, figure1_answer):
        from repro.uxml import forest_size
        from repro.uxquery import parse_query, query_size

        document_size = forest_size(figure1_source())
        q_size = query_size(parse_query(figure1_query()))
        assert max_polynomial_size(figure1_answer.children) <= proposition2_bound(
            document_size, q_size
        )
