"""The bench-regression watchdog (benchmarks/regress.py, `repro bench-check`)."""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def regress():
    spec = importlib.util.spec_from_file_location(
        "regress_under_test", REPO_ROOT / "benchmarks" / "regress.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["regress_under_test"] = module
    spec.loader.exec_module(module)
    yield module
    sys.modules.pop("regress_under_test", None)


def _base_run(stamp: str) -> dict:
    """A minimal archived run with one metric from every flattened section."""
    return {
        "generated_at": stamp,
        "quick": False,
        "speedups": [{"name": "figure1", "speedup": 10.0}],
        "codegen": {"cases": [{"name": "chain", "speedup_codegen_vs_closure": 3.0}]},
        "exec": {"batch_throughput": {"speedup_vs_single_shot_loop": 4.0}},
        "ivm": {"speedup_maintain_vs_recompute": 20.0},
        "store": {
            "pushdown": {"speedup_indexed_vs_scan": 8.0},
            "recovery": {"speedup_recover_vs_rebuild": 6.0},
        },
        "resilience": {"overhead_ratio": 1.01},
        "obs": {"overhead_ratio": 1.01, "traced_ratio": 1.5},
    }


def _write_history(directory: Path, runs: list[dict]) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    for index, run in enumerate(runs):
        (directory / f"run-2026010{index + 1}T000000Z.json").write_text(
            json.dumps(run) + "\n"
        )


def _slowed(run: dict, factor: float) -> dict:
    """The same run with every speedup divided (and every ratio multiplied)."""
    slowed = json.loads(json.dumps(run))
    slowed["speedups"][0]["speedup"] /= factor
    slowed["codegen"]["cases"][0]["speedup_codegen_vs_closure"] /= factor
    slowed["exec"]["batch_throughput"]["speedup_vs_single_shot_loop"] /= factor
    slowed["ivm"]["speedup_maintain_vs_recompute"] /= factor
    slowed["store"]["pushdown"]["speedup_indexed_vs_scan"] /= factor
    slowed["store"]["recovery"]["speedup_recover_vs_rebuild"] /= factor
    slowed["resilience"]["overhead_ratio"] *= factor
    slowed["obs"]["overhead_ratio"] *= factor
    return slowed


class TestCheckRegressions:
    def test_synthetic_2x_slowdown_is_detected(self, regress, tmp_path):
        history = tmp_path / "BENCH_history"
        healthy = [_base_run(f"2026-01-0{n}T00:00:00+00:00") for n in (1, 2, 3)]
        worst = _slowed(_base_run("2026-01-04T00:00:00+00:00"), 2.0)
        worst["generated_at"] = "2026-01-04T00:00:00+00:00"
        _write_history(history, healthy + [worst])
        exit_code = regress.run_check(history_dir=history)
        assert exit_code == 1
        report = regress.check_regressions(regress.load_history(history, quick=False))
        regressed = {record["metric"] for record in report["regressions"]}
        assert "speedups/figure1" in regressed
        assert "ivm/maintain_vs_recompute" in regressed
        assert "obs/disarmed_overhead_ratio" in regressed  # ratios: up = worse

    def test_healthy_history_passes(self, regress, tmp_path):
        history = tmp_path / "BENCH_history"
        _write_history(
            history, [_base_run(f"2026-01-0{n}T00:00:00+00:00") for n in (1, 2, 3)]
        )
        assert regress.run_check(history_dir=history) == 0

    def test_improvements_do_not_fail_the_check(self, regress, tmp_path):
        history = tmp_path / "BENCH_history"
        base = _base_run("2026-01-01T00:00:00+00:00")
        faster = _slowed(_base_run("2026-01-02T00:00:00+00:00"), 0.5)  # 2x faster
        _write_history(history, [base, faster])
        assert regress.run_check(history_dir=history) == 0
        report = regress.check_regressions(regress.load_history(history, quick=False))
        assert report["improvements"]

    def test_single_run_has_no_baseline_and_passes(self, regress, tmp_path):
        history = tmp_path / "BENCH_history"
        _write_history(history, [_base_run("2026-01-01T00:00:00+00:00")])
        assert regress.run_check(history_dir=history) == 0
        report = regress.check_regressions(regress.load_history(history, quick=False))
        assert report["reason"].startswith("only 1")

    def test_missing_history_directory_is_a_usage_error(self, regress, tmp_path):
        assert regress.run_check(history_dir=tmp_path / "nope") == 2

    def test_baseline_is_the_median_of_the_window(self, regress, tmp_path):
        # One noisy outlier in the window must not poison the baseline.
        history = tmp_path / "BENCH_history"
        noisy = _slowed(_base_run("2026-01-02T00:00:00+00:00"), 0.25)  # 4x "fast" blip
        runs = [
            _base_run("2026-01-01T00:00:00+00:00"),
            noisy,
            _base_run("2026-01-03T00:00:00+00:00"),
            _base_run("2026-01-04T00:00:00+00:00"),
        ]
        _write_history(history, runs)
        assert regress.run_check(history_dir=history) == 0

    def test_mode_mismatch_is_excluded(self, regress, tmp_path):
        history = tmp_path / "BENCH_history"
        quick = _base_run("2026-01-01T00:00:00+00:00")
        quick["quick"] = True
        _write_history(history, [quick, _base_run("2026-01-02T00:00:00+00:00")])
        assert len(regress.load_history(history, quick=False)) == 1
        assert len(regress.load_history(history, quick=True)) == 1


class TestCliBenchCheck:
    def test_cli_detects_the_synthetic_slowdown(self, regress, tmp_path, capsys):
        history = tmp_path / "BENCH_history"
        healthy = [_base_run(f"2026-01-0{n}T00:00:00+00:00") for n in (1, 2, 3)]
        worst = _slowed(_base_run("2026-01-04T00:00:00+00:00"), 2.0)
        _write_history(history, healthy + [worst])
        assert main(["bench-check", "--history", str(history)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_json_report(self, regress, tmp_path, capsys):
        history = tmp_path / "BENCH_history"
        _write_history(
            history, [_base_run(f"2026-01-0{n}T00:00:00+00:00") for n in (1, 2)]
        )
        assert main(["bench-check", "--history", str(history), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["baseline_runs"] == 1

    def test_cli_threshold_is_respected(self, regress, tmp_path):
        history = tmp_path / "BENCH_history"
        base = _base_run("2026-01-01T00:00:00+00:00")
        slightly = _slowed(_base_run("2026-01-02T00:00:00+00:00"), 1.1)  # ~9% worse
        _write_history(history, [base, slightly])
        assert main(["bench-check", "--history", str(history)]) == 0  # under 15%
        assert main(
            ["bench-check", "--history", str(history), "--threshold", "5"]
        ) == 1  # over 5%

    def test_committed_history_is_checkable(self, capsys):
        # The real BENCH_history/ must always load (exit 0 or 1, never 2).
        exit_code = main(["bench-check", "--history", str(REPO_ROOT / "BENCH_history")])
        assert exit_code in (0, 1)
        capsys.readouterr()
