"""The security application of Section 4: clearance propagation and access control."""

from __future__ import annotations

import pytest

from repro.paperdata import (
    figure5_uxquery,
    figure6_source_uxml,
    figure7_expected_clearances,
    figure7_valuation,
)
from repro.provenance import specialize, tokens_used
from repro.relational import forest_to_relation
from repro.security import AccessControl, clearance_view, clearance_view_via_provenance
from repro.semirings import CLEARANCE, PROVENANCE
from repro.uxml import TreeBuilder


@pytest.fixture
def clearance_builder():
    return TreeBuilder(CLEARANCE)


class TestFigure7:
    def test_clearances_via_provenance_specialization(self):
        """Evaluate once in N[X], then specialize with w1=C, x2=S, y5=T (Corollary 1)."""
        view = clearance_view_via_provenance(
            figure5_uxquery(), {"d": figure6_source_uxml()}, figure7_valuation()
        )
        relation = forest_to_relation(view.children, ("A", "C"))
        assert {row: annotation for row, annotation in relation.items()} == figure7_expected_clearances()

    def test_clearances_by_direct_evaluation(self):
        """Annotating the source with clearances and evaluating in C gives the same view."""
        source = figure6_source_uxml()
        valuation = {token: CLEARANCE.one for token in tokens_used(source)}
        valuation.update(figure7_valuation())
        clearance_source = specialize(source, valuation, CLEARANCE)
        view = clearance_view(figure5_uxquery(), {"d": clearance_source})
        relation = forest_to_relation(view.children, ("A", "C"))
        assert {row: annotation for row, annotation in relation.items()} == figure7_expected_clearances()

    def test_alternative_derivations_lower_the_required_clearance(self):
        """(a, c) and (f, e) stay confidential although one derivation uses top-secret data."""
        expected = figure7_expected_clearances()
        assert expected[("a", "c")] == "C"
        assert expected[("f", "c")] == "T"


class TestAccessControl:
    def test_visible_members(self, clearance_builder):
        b = clearance_builder
        view = b.forest(b.leaf("public") @ "P", b.leaf("secret") @ "S", b.leaf("top") @ "T")
        control = AccessControl()
        assert control.visible_members(view, "S").support() == {
            b.leaf("public"),
            b.leaf("secret"),
        }
        assert control.visible_members(view, "T") == view
        assert control.visible_members(view, "P").support() == {b.leaf("public")}

    def test_absent_is_never_visible(self, clearance_builder):
        b = clearance_builder
        view = b.forest(b.leaf("gone") @ "0")
        control = AccessControl()
        assert view.is_empty() or control.visible_members(view, "T").is_empty()

    def test_redaction_prunes_subtrees(self, clearance_builder):
        b = clearance_builder
        tree = b.tree(
            "report",
            b.tree("summary", b.leaf("ok")) @ "P",
            b.tree("details", b.leaf("codes")) @ "T",
        )
        control = AccessControl()
        redacted = control.redact_tree(tree, "C")
        labels = {child.label for child in redacted.child_trees()}
        assert labels == {"summary"}

    def test_redact_forest(self, clearance_builder):
        b = clearance_builder
        view = b.forest(
            b.tree("a", b.leaf("x") @ "S") @ "C",
            b.tree("b", b.leaf("y")) @ "T",
        )
        control = AccessControl()
        redacted = control.redact(view, "C")
        assert len(redacted) == 1
        (survivor,) = redacted
        assert survivor.label == "a"
        assert survivor.is_leaf()  # the secret child was pruned

    def test_can_see(self):
        control = AccessControl()
        assert control.can_see("P", "P")
        assert control.can_see("C", "T")
        assert not control.can_see("T", "C")
        assert not control.can_see("0", "T")

    def test_clearance_report_groups_members(self, clearance_builder):
        b = clearance_builder
        view = b.forest(b.leaf("one") @ "C", b.leaf("two") @ "C", b.leaf("three") @ "T")
        report = AccessControl().clearance_report(view)
        assert report["C"] == ["one", "two"]
        assert report["T"] == ["three"]
        assert report["P"] == []

    def test_query_level_access_control_workflow(self, clearance_builder):
        """End to end: annotate, query, then redact per user clearance."""
        b = clearance_builder
        source = b.forest(
            b.tree(
                "patients",
                b.tree("patient", b.tree("name", b.leaf("alice")), b.tree("dna", b.leaf("AT"))) @ "C",
                b.tree("patient", b.tree("name", b.leaf("bob")), b.tree("dna", b.leaf("GC")) @ "T") @ "C",
            )
        )
        view = clearance_view("element out { $db//name }", {"db": source})
        control = AccessControl()
        public_view = control.redact(view.children, "P")
        confidential_view = control.redact(view.children, "C")
        assert public_view.is_empty()
        assert len(confidential_view) == 2
