"""Equational rewriting (Proposition 5) and the NRC(RA+) builders (Proposition 4)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kcollections import KSet
from repro.nrc import (
    BigUnion,
    EmptySet,
    IfEq,
    Kids,
    LabelLit,
    Let,
    Pair,
    PairExpr,
    Proj,
    Scale,
    Singleton,
    Tag,
    TreeExpr,
    Union,
    Var,
    count_nodes,
    evaluate,
    expression_size,
    free_variables,
    join_expr,
    kset_to_relation_rows,
    map_scalars,
    project_expr,
    relation_to_kset,
    select_eq_expr,
    simplify,
    substitute,
    tuple_to_value,
    value_to_tuple,
)
from repro.semirings import NATURAL


class TestAstUtilities:
    def test_free_variables(self):
        expr = BigUnion("x", Var("R"), Singleton(PairExpr(Var("x"), Var("y"))))
        assert free_variables(expr) == frozenset({"R", "y"})

    def test_substitute_avoids_capture(self):
        expr = BigUnion("x", Var("R"), Singleton(PairExpr(Var("x"), Var("y"))))
        substituted = substitute(expr, "y", Var("x"))
        result = evaluate(
            substituted,
            NATURAL,
            {"R": KSet.singleton(NATURAL, "a"), "x": "outer"},
        )
        # The free x refers to the outer binding, not the bound iteration variable.
        assert result.annotation(Pair("a", "outer")) == 1

    def test_substitute_into_bound_variable_is_noop(self):
        expr = BigUnion("x", Var("R"), Singleton(Var("x")))
        assert substitute(expr, "x", LabelLit("z")) == expr

    def test_expression_size(self):
        expr = Union(Singleton(LabelLit("a")), EmptySet())
        assert expression_size(expr) == 4
        assert count_nodes(expr) == 4

    def test_equality_and_hash_of_expressions(self):
        left = Union(Singleton(LabelLit("a")), EmptySet())
        right = Union(Singleton(LabelLit("a")), EmptySet())
        assert left == right
        assert hash(left) == hash(right)

    def test_map_scalars(self):
        expr = Scale(2, Union(Scale(3, EmptySet()), Singleton(LabelLit("a"))))
        doubled = map_scalars(expr, lambda k: k * 10)
        assert doubled == Scale(20, Union(Scale(30, EmptySet()), Singleton(LabelLit("a"))))


class TestRewriteRules:
    def test_big_union_over_empty(self):
        expr = BigUnion("x", EmptySet(), Singleton(Var("x")))
        assert simplify(expr, NATURAL) == EmptySet()

    def test_big_union_over_singleton_inlines(self):
        expr = BigUnion("x", Singleton(LabelLit("a")), Singleton(Var("x")))
        assert simplify(expr, NATURAL) == Singleton(LabelLit("a"))

    def test_right_unit(self):
        expr = BigUnion("x", Var("R"), Singleton(Var("x")))
        assert simplify(expr, NATURAL) == Var("R")

    def test_union_with_empty(self):
        assert simplify(Union(Var("R"), EmptySet()), NATURAL) == Var("R")

    def test_scale_by_one_and_zero(self):
        assert simplify(Scale(1, Var("R")), NATURAL) == Var("R")
        assert simplify(Scale(0, Var("R")), NATURAL) == EmptySet()
        assert simplify(Scale(2, Scale(3, Var("R"))), NATURAL) == Scale(6, Var("R"))

    def test_projection_of_pair(self):
        expr = Proj(1, PairExpr(LabelLit("a"), LabelLit("b")))
        assert simplify(expr, NATURAL) == LabelLit("a")

    def test_tree_accessors(self):
        tree = TreeExpr(LabelLit("a"), Var("C"))
        assert simplify(Tag(tree), NATURAL) == LabelLit("a")
        assert simplify(Kids(tree), NATURAL) == Var("C")

    def test_constant_conditionals(self):
        same = IfEq(LabelLit("a"), LabelLit("a"), Var("X"), Var("Y"))
        different = IfEq(LabelLit("a"), LabelLit("b"), Var("X"), Var("Y"))
        assert simplify(same, NATURAL) == Var("X")
        assert simplify(different, NATURAL) == Var("Y")

    def test_let_inlining(self):
        expr = Let("x", LabelLit("a"), PairExpr(Var("x"), Var("x")))
        assert simplify(expr, NATURAL) == PairExpr(LabelLit("a"), LabelLit("a"))

    def test_bigunion_associativity(self):
        inner = BigUnion("y", Var("R"), Singleton(PairExpr(Var("y"), Var("y"))))
        expr = BigUnion("x", inner, Singleton(Proj(1, Var("x"))))
        simplified = simplify(expr, NATURAL)
        env = {"R": KSet(NATURAL, [("a", 2), ("b", 1)])}
        assert evaluate(simplified, NATURAL, env) == evaluate(expr, NATURAL, env)

    @settings(max_examples=40, deadline=None)
    @given(
        st.dictionaries(st.sampled_from(["a", "b", "c"]), st.integers(0, 4), max_size=3),
        st.integers(0, 4),
    )
    def test_simplifier_preserves_semantics(self, table, scalar):
        env = {"R": KSet(NATURAL, table)}
        expr = Scale(
            scalar,
            BigUnion(
                "x",
                Var("R"),
                IfEq(Var("x"), LabelLit("a"), Singleton(Var("x")), Singleton(LabelLit("z"))),
            ),
        )
        assert evaluate(simplify(expr, NATURAL), NATURAL, env) == evaluate(expr, NATURAL, env)


class TestRelationalEncoding:
    def test_tuple_round_trip(self):
        assert value_to_tuple(tuple_to_value(("a", "b", "c")), 3) == ("a", "b", "c")
        assert value_to_tuple(tuple_to_value(("a",)), 1) == ("a",)
        assert value_to_tuple(tuple_to_value(()), 0) == ()

    def test_relation_round_trip(self):
        rows = [(("a", "b"), 2), (("c", "d"), 3)]
        collection = relation_to_kset(NATURAL, rows)
        assert kset_to_relation_rows(collection, 2) == sorted(rows)

    def test_projection_expression(self):
        rows = [(("a", "b", "c"), 2), (("a", "x", "c"), 3)]
        collection = relation_to_kset(NATURAL, rows)
        expr = project_expr(Var("R"), 3, [0, 2])
        result = evaluate(expr, NATURAL, {"R": collection})
        assert kset_to_relation_rows(result, 2) == [(("a", "c"), 5)]

    def test_selection_expression(self):
        rows = [(("a", "b"), 2), (("c", "b"), 3)]
        collection = relation_to_kset(NATURAL, rows)
        expr = select_eq_expr(Var("R"), 2, 0, "a")
        result = evaluate(expr, NATURAL, {"R": collection})
        assert kset_to_relation_rows(result, 2) == [(("a", "b"), 2)]

    def test_join_expression(self):
        left = relation_to_kset(NATURAL, [(("a", "b"), 2), (("c", "d"), 1)])
        right = relation_to_kset(NATURAL, [(("b", "z"), 3), (("q", "z"), 5)])
        expr = join_expr(
            Var("L"),
            2,
            Var("R"),
            2,
            1,
            0,
            [("left", 0), ("right", 1)],
        )
        result = evaluate(expr, NATURAL, {"L": left, "R": right})
        assert kset_to_relation_rows(result, 2) == [(("a", "z"), 6)]
