"""Equivalence of the closure-compiled evaluator with the reference semantics.

The compiled evaluator (:mod:`repro.nrc.compile_eval`) must agree with the
Figure 8 interpreter (:mod:`repro.nrc.eval`) — and, through the engine, with
the independent direct interpreter (:mod:`repro.uxquery.direct`) — on every
well-typed program.  This suite checks that property across:

* the standard query workload and randomized queries from
  :mod:`repro.workloads`,
* every semiring in the registry (so the trusted fast-path constructors are
  exercised for idempotent, annihilating and canonical-form semirings alike),
* hand-built NRC expressions covering every AST node, including the binder
  forms whose slot allocation the compiler must get right (shadowing, reuse
  of a variable name in sibling scopes, srt over shared subtrees),
* repeated evaluation of one compiled program (persistent srt memo tables and
  frame reuse must not leak state between calls).
"""

from __future__ import annotations

import pytest

from repro.errors import NRCEvalError
from repro.kcollections.kset import KSet
from repro.nrc.ast import (
    BigUnion,
    EmptySet,
    IfEq,
    Kids,
    LabelLit,
    Let,
    PairExpr,
    Proj,
    Scale,
    Singleton,
    Srt,
    Tag,
    TreeExpr,
    Union,
    Var,
)
from repro.nrc.compile_eval import compile_expr, evaluate_compiled
from repro.nrc.eval import evaluate as evaluate_interp
from repro.semirings import NATURAL, PROVENANCE
from repro.semirings.registry import available_semirings, get_semiring
from repro.uxml.tree import UTree, forest, leaf
from repro.uxquery import prepare_query
from repro.workloads import random_forest, random_query, standard_query_suite

ALL_METHODS = ("nrc-codegen", "nrc", "nrc-interp", "direct")


def _assert_all_methods_agree(query, semiring, env):
    prepared = prepare_query(query, semiring, env)
    results = {method: prepared.evaluate(env, method=method) for method in ALL_METHODS}
    assert results["nrc"] == results["nrc-interp"], "compiled != interpreter"
    assert results["nrc"] == results["direct"], "compiled != direct"
    assert results["nrc-codegen"] == results["nrc"], "codegen != compiled"
    # Re-evaluating the same prepared query must be stable (memo tables and
    # frame slots must not leak state between calls).
    assert prepared.evaluate(env) == results["nrc"]
    return results["nrc"]


# ---------------------------------------------------------------------------
# Corpus x registry semirings
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("semiring_name", available_semirings())
@pytest.mark.parametrize("query_name", sorted(standard_query_suite()))
def test_query_corpus_across_registry(semiring_name, query_name):
    semiring = get_semiring(semiring_name)
    query = standard_query_suite()[query_name]
    env = {"S": random_forest(semiring, num_trees=3, depth=3, fanout=2, seed=11)}
    _assert_all_methods_agree(query, semiring, env)


@pytest.mark.parametrize("seed", range(12))
def test_random_queries_provenance(seed):
    query = random_query(seed=seed)
    env = {"S": random_forest(PROVENANCE, num_trees=3, depth=3, fanout=2, seed=seed)}
    _assert_all_methods_agree(query, PROVENANCE, env)


@pytest.mark.parametrize("seed", range(6))
def test_random_queries_natural(seed):
    query = random_query(seed=seed + 100)
    env = {"S": random_forest(NATURAL, num_trees=2, depth=4, fanout=2, seed=seed)}
    _assert_all_methods_agree(query, NATURAL, env)


# ---------------------------------------------------------------------------
# Direct NRC expressions: every node kind, tricky scoping
# ---------------------------------------------------------------------------
def _sample_tree(semiring) -> UTree:
    a = leaf(semiring, "a")
    b = leaf(semiring, "b")
    inner = UTree("n", forest(semiring, a, b))
    return UTree("root", forest(semiring, inner, a))


@pytest.mark.parametrize("semiring_name", available_semirings())
def test_node_coverage_expression(semiring_name):
    semiring = get_semiring(semiring_name)
    tree = _sample_tree(semiring)
    expr = Let(
        "t",
        Var("input"),
        BigUnion(
            "x",
            Kids(Var("t")),
            IfEq(
                Tag(Var("x")),
                LabelLit("n"),
                Singleton(PairExpr(Tag(Var("x")), Proj(1, PairExpr(Var("x"), Var("x"))))),
                Union(
                    Singleton(PairExpr(LabelLit("other"), Var("x"))),
                    Scale(semiring.one, EmptySet()),
                ),
            ),
        ),
    )
    env = {"input": tree}
    interpreted = evaluate_interp(expr, semiring, env)
    compiled = compile_expr(expr, semiring)
    assert compiled.evaluate(env) == interpreted
    assert compiled.evaluate(env) == interpreted  # second call: no state leak


@pytest.mark.parametrize("semiring_name", available_semirings())
def test_srt_expression(semiring_name):
    """Structural recursion: count/collect labels via Tree rebuilding."""
    semiring = get_semiring(semiring_name)
    tree = _sample_tree(semiring)
    # (srt(l, acc). Tree(l, acc)) t — the identity on trees, hitting TreeExpr,
    # the accumulator path and the srt memo over the shared leaf `a`.
    expr = Srt("l", "acc", TreeExpr(Var("l"), Var("acc")), Var("input"))
    env = {"input": tree}
    interpreted = evaluate_interp(expr, semiring, env)
    program = compile_expr(expr, semiring)
    assert program.evaluate(env) == interpreted == tree
    assert program.evaluate(env) == tree


def test_srt_open_body_uses_outer_binding():
    """An srt body with a free variable still sees the current environment."""
    semiring = NATURAL
    tree = _sample_tree(semiring)
    expr = Srt(
        "l",
        "acc",
        Union(Singleton(Var("extra")), Var("acc")),
        Var("input"),
    )
    for extra_label in ("p", "q"):
        extra = leaf(semiring, extra_label)
        env = {"input": tree, "extra": extra}
        interpreted = evaluate_interp(expr, semiring, env)
        compiled = evaluate_compiled(expr, semiring, env)
        assert compiled == interpreted
        assert extra in compiled


def test_variable_shadowing_and_sibling_scopes():
    semiring = NATURAL
    source = KSet.from_values(semiring, ["x", "y"])
    # The same variable name bound by nested and by sibling binders: each
    # binder must get its own slot.
    expr = Union(
        BigUnion("v", Var("S"), Let("v", LabelLit("shadowed"), Singleton(Var("v")))),
        BigUnion("v", Var("S"), Singleton(Var("v"))),
    )
    env = {"S": source}
    interpreted = evaluate_interp(expr, semiring, env)
    assert evaluate_compiled(expr, semiring, env) == interpreted
    assert interpreted.annotation("shadowed") == 2
    assert interpreted.annotation("x") == 1


def test_unbound_variable_raises_on_access_only():
    semiring = NATURAL
    # The unbound branch is never taken, so no error (as in the interpreter).
    guarded = IfEq(LabelLit("a"), LabelLit("a"), Singleton(LabelLit("ok")), Singleton(Var("missing")))
    assert evaluate_compiled(guarded, semiring, {}) == evaluate_interp(guarded, semiring, {})
    with pytest.raises(NRCEvalError):
        evaluate_compiled(Var("missing"), semiring, {})


def test_compiled_expr_reports_free_variables():
    expr = BigUnion("x", Var("S"), Singleton(PairExpr(Var("x"), Var("T"))))
    program = compile_expr(expr, NATURAL)
    assert program.free_variables == {"S", "T"}


@pytest.mark.parametrize("semiring_name", ["natural", "provenance-polynomials", "subset-lattice"])
def test_scale_annihilation_and_units(semiring_name):
    """Scalar multiplication: zero annihilates, one is the identity, and
    lattice meets that collapse to zero drop members (trusted-path zero check)."""
    semiring = get_semiring(semiring_name)
    samples = [value for value in semiring.sample_elements()]
    source = KSet.from_values(semiring, ["a", "b"])
    for scalar in samples:
        expr = Scale(scalar, Var("S"))
        env = {"S": source}
        assert evaluate_compiled(expr, semiring, env) == evaluate_interp(expr, semiring, env)
