"""Limit semantics across the three evaluators (satellite of the resilience PR).

One query + one :class:`EvalLimits` must behave identically under
``nrc-interp``, ``nrc`` and ``nrc-codegen``: the same typed error when a
limit fires, the same (unlimited-equal) result when it does not — the
three-evaluator equivalence contract extended to guardrails.
"""

from __future__ import annotations

import pytest

from repro.errors import BudgetExceededError, QueryTimeoutError
from repro.resilience import EvalLimits
from repro.semirings import NATURAL, PROVENANCE, TROPICAL
from repro.semirings.boolean import BOOLEAN
from repro.semirings.registry import standard_semirings
from repro.uxquery import prepare_query
from repro.workloads import random_forest

METHODS = ("nrc-interp", "nrc", "nrc-codegen")

#: A straight-line query (codegen generates for it) and an srt query
#: (codegen declines, closure fallback serves it) — both fan out enough
#: rows that tiny budgets fire in every evaluator's loop.
FLAT_QUERY = "($S)/*/*"
SRT_QUERY = "($S)//c"


def _prepared(query, semiring, num_trees=4):
    forest = random_forest(semiring, num_trees=num_trees, depth=3, fanout=3, seed=17)
    prepared = prepare_query(query, semiring, env={"S": forest})
    return prepared, {"S": forest}


class TestTimeoutEquivalence:
    @pytest.mark.parametrize("query", [FLAT_QUERY, SRT_QUERY])
    @pytest.mark.parametrize("method", METHODS)
    def test_expired_deadline_raises_the_same_typed_error(self, query, method):
        prepared, env = _prepared(query, NATURAL)
        with pytest.raises(QueryTimeoutError):
            prepared.evaluate(env, method=method, limits=EvalLimits(timeout_s=0))

    @pytest.mark.parametrize("method", METHODS)
    def test_timeout_fires_on_every_registry_semiring(self, method):
        for semiring in standard_semirings():
            prepared, env = _prepared(FLAT_QUERY, semiring, num_trees=2)
            with pytest.raises(QueryTimeoutError):
                prepared.evaluate(env, method=method, limits=EvalLimits(timeout_s=0))


class TestRowBudgetEquivalence:
    @pytest.mark.parametrize("query", [FLAT_QUERY, SRT_QUERY])
    @pytest.mark.parametrize("method", METHODS)
    def test_small_row_budget_raises_the_same_typed_error(self, query, method):
        prepared, env = _prepared(query, NATURAL)
        reference = prepared.evaluate(env, method=method)
        assert len(reference) > 1  # the budget below is genuinely exceeded
        with pytest.raises(BudgetExceededError):
            prepared.evaluate(env, method=method, limits=EvalLimits(max_rows=1))

    @pytest.mark.parametrize("semiring", [BOOLEAN, NATURAL, PROVENANCE, TROPICAL])
    @pytest.mark.parametrize("method", METHODS)
    def test_budget_errors_agree_across_semirings(self, semiring, method):
        prepared, env = _prepared(FLAT_QUERY, semiring)
        with pytest.raises(BudgetExceededError):
            prepared.evaluate(env, method=method, limits=EvalLimits(max_rows=1))


class TestByteBudgetEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    def test_tiny_byte_budget_raises_identically(self, method):
        prepared, env = _prepared(FLAT_QUERY, NATURAL)
        with pytest.raises(BudgetExceededError):
            prepared.evaluate(
                env, method=method, limits=EvalLimits(max_result_bytes=4)
            )


class TestGenerousLimitsAreInvisible:
    @pytest.mark.parametrize("query", [FLAT_QUERY, SRT_QUERY])
    def test_results_equal_the_unlimited_run_under_every_method(self, query):
        generous = EvalLimits(timeout_s=300, max_rows=10**9, max_result_bytes=10**12)
        for semiring in (BOOLEAN, NATURAL, PROVENANCE, TROPICAL):
            prepared, env = _prepared(query, semiring)
            unlimited = prepared.evaluate(env)
            for method in METHODS:
                limited = prepared.evaluate(env, method=method, limits=generous)
                assert limited == unlimited, (semiring.name, method)

    def test_unbounded_limits_object_is_a_no_op(self):
        prepared, env = _prepared(FLAT_QUERY, NATURAL)
        assert prepared.evaluate(env, limits=EvalLimits()) == prepared.evaluate(env)
