"""Unit coverage for the source-codegen evaluator (:mod:`repro.nrc.codegen`).

The exhaustive equivalence checks live in ``test_compile_eval_equiv.py``
(corpus x registry semirings, now including ``nrc-codegen``) and
``test_codegen_fuzz.py`` (randomized expressions); this file covers the
mechanics: the decline gates and their reasons, scoping/shadowing in the
generated locals, frame semantics (unbound-at-access), inline-op template
validation, and the engine-level wiring (default method, ``program_for``,
execution counters).
"""

from __future__ import annotations

import pytest

from repro.errors import NRCEvalError, SemiringError
from repro.kcollections.kset import KSet
from repro.nrc.ast import (
    BigUnion,
    EmptySet,
    IfEq,
    Kids,
    LabelLit,
    Let,
    PairExpr,
    Proj,
    Scale,
    Singleton,
    Srt,
    Tag,
    TreeExpr,
    Union,
    Var,
)
from repro.nrc.codegen import (
    CodegenProgram,
    CodegenUnsupported,
    compile_codegen,
    codegen_stats,
    try_compile_codegen,
)
from repro.nrc.eval import evaluate as evaluate_interp
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE
from repro.semirings.base import Semiring
from repro.semirings.registry import available_semirings, get_semiring
from repro.uxml.tree import UTree, forest, leaf
from repro.uxquery import prepare_query
from repro.workloads import random_forest


def _sample_tree(semiring) -> UTree:
    a = leaf(semiring, "a")
    b = leaf(semiring, "b")
    inner = UTree("n", forest(semiring, a, b))
    return UTree("root", forest(semiring, inner, a))


# ---------------------------------------------------------------------------
# Node coverage and scoping
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("semiring_name", available_semirings())
def test_node_coverage_expression(semiring_name):
    semiring = get_semiring(semiring_name)
    tree = _sample_tree(semiring)
    expr = Let(
        "t",
        Var("input"),
        BigUnion(
            "x",
            Kids(Var("t")),
            IfEq(
                Tag(Var("x")),
                LabelLit("n"),
                Singleton(PairExpr(Tag(Var("x")), Proj(1, PairExpr(Var("x"), Var("x"))))),
                Union(
                    Singleton(PairExpr(LabelLit("other"), Var("x"))),
                    Scale(semiring.one, EmptySet()),
                ),
            ),
        ),
    )
    env = {"input": tree}
    interpreted = evaluate_interp(expr, semiring, env)
    program = compile_codegen(expr, semiring)
    assert program.evaluate(env) == interpreted
    assert program.evaluate(env) == interpreted  # second call: no state leak


def test_variable_shadowing_and_sibling_scopes():
    semiring = NATURAL
    source = KSet.from_values(semiring, ["x", "y"])
    expr = Union(
        BigUnion("v", Var("S"), Let("v", LabelLit("shadowed"), Singleton(Var("v")))),
        BigUnion("v", Var("S"), Singleton(Var("v"))),
    )
    env = {"S": source}
    interpreted = evaluate_interp(expr, semiring, env)
    assert compile_codegen(expr, semiring).evaluate(env) == interpreted
    assert interpreted.annotation("shadowed") == 2


def test_unbound_variable_raises_on_access_only():
    semiring = NATURAL
    guarded = IfEq(
        LabelLit("a"), LabelLit("a"), Singleton(LabelLit("ok")), Singleton(Var("missing"))
    )
    program = compile_codegen(guarded, semiring)
    assert program.evaluate({}) == evaluate_interp(guarded, semiring, {})
    with pytest.raises(NRCEvalError, match="unbound variable"):
        compile_codegen(Singleton(Var("missing")), semiring).evaluate({})


def test_free_variables_reported():
    expr = BigUnion("x", Var("S"), Singleton(PairExpr(Var("x"), Var("T"))))
    program = compile_codegen(expr, NATURAL)
    assert program.free_variables == {"S", "T"}


@pytest.mark.parametrize("semiring_name", ["natural", "provenance-polynomials", "subset-lattice"])
def test_scale_annihilation_and_units(semiring_name):
    semiring = get_semiring(semiring_name)
    source = KSet.from_values(semiring, ["a", "b"])
    for scalar in semiring.sample_elements():
        expr = Scale(scalar, Var("S"))
        env = {"S": source}
        assert compile_codegen(expr, semiring).evaluate(env) == evaluate_interp(
            expr, semiring, env
        )


def test_foreign_collection_raises_semiring_error():
    # A standalone program (no closure fallback attached) raises, exactly
    # like KSet's own algebra would.
    expr = BigUnion("x", Var("S"), Singleton(Var("x")))
    program = compile_codegen(expr, NATURAL)
    foreign = KSet.from_values(BOOLEAN, ["a"])
    with pytest.raises(SemiringError, match="different semirings"):
        program.evaluate({"S": foreign})


def test_foreign_collection_engine_parity_via_closure_fallback():
    """The engine contract: nrc-codegen agrees with nrc even on runtime
    foreign-semiring collections, where the closure evaluator's bespoke
    behavior (big unions delegate to the collection's semiring) defines the
    result — the generated program bails out and reruns the closures."""
    document = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=41)
    prepared = prepare_query("($S)/*", NATURAL, {"S": document})
    assert prepared.generated is not None
    foreign = random_forest(BOOLEAN, num_trees=2, depth=3, fanout=2, seed=41)
    via_closures = prepared.evaluate({"S": foreign}, method="nrc")
    assert via_closures.semiring == BOOLEAN
    assert prepared.evaluate({"S": foreign}, method="nrc-codegen") == via_closures
    assert prepared.evaluate({"S": foreign}) == via_closures
    # The batch template path re-dispatches foreign documents the same way.
    from repro.exec import BatchEvaluator

    mixed = [document, foreign, document]
    batched = BatchEvaluator(prepared).evaluate_many(mixed)
    assert batched == [prepared.evaluate({"S": doc}, method="nrc") for doc in mixed]


# ---------------------------------------------------------------------------
# Decline gates
# ---------------------------------------------------------------------------
def test_declines_srt_with_reason():
    expr = Srt("l", "acc", Singleton(TreeExpr(Var("l"), BigUnion("z", Var("acc"), Var("z")))), Var("t"))
    program, reason = try_compile_codegen(Kids(Var("t")), NATURAL)
    assert program is not None and reason is None
    program, reason = try_compile_codegen(expr, NATURAL)
    assert program is None
    assert "srt" in reason
    with pytest.raises(CodegenUnsupported, match="srt"):
        compile_codegen(expr, NATURAL)


def test_declines_non_canonical_semiring():
    class Sloppy(Semiring):
        name = "sloppy-test"
        ops_preserve_normal_form = False

        @property
        def zero(self):
            return 0

        @property
        def one(self):
            return 1

        def add(self, a, b):
            return a + b

        def mul(self, a, b):
            return a * b

        def is_valid(self, a):
            return isinstance(a, int) and a >= 0

    program, reason = try_compile_codegen(Singleton(LabelLit("a")), Sloppy())
    assert program is None
    assert "canonical form" in reason


def test_declines_foreign_scalar():
    program, reason = try_compile_codegen(Scale(object(), Var("S")), NATURAL)
    assert program is None
    assert "foreign" in reason


def test_counters_track_generation():
    before = codegen_stats()
    compile_codegen(Singleton(LabelLit("a")), NATURAL)
    try_compile_codegen(Srt("l", "a", Var("a"), Var("t")), NATURAL)
    after = codegen_stats()
    assert after["generated"] == before["generated"] + 1
    assert after["declined"] == before["declined"] + 1


# ---------------------------------------------------------------------------
# Inline-op template validation
# ---------------------------------------------------------------------------
def test_bad_inline_template_falls_back_to_bound_ops():
    class WrongTemplate(type(NATURAL)):
        name = "natural"  # same identity so KSets interoperate
        codegen_add = "({a} - {b})"  # disagrees with add on samples
        codegen_mul = "not even python ("  # does not compile

    semiring = WrongTemplate()
    expr = Union(Var("S"), Var("S"))
    program = compile_codegen(expr, semiring)
    source_forest = KSet(semiring, [("a", 2), ("b", 3)])
    result = program.evaluate({"S": source_forest})
    assert result.annotation("a") == 4  # the real add, not the bad template
    assert "_ADD(" in program.source and " - " not in program.source


# ---------------------------------------------------------------------------
# Engine wiring
# ---------------------------------------------------------------------------
def test_prepared_query_defaults_to_generated_program():
    document = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=3)
    prepared = prepare_query("element out { $S/*/* }", NATURAL, {"S": document})
    assert prepared.generated is not None
    assert prepared.codegen_reason is None
    assert prepared.program is prepared.generated
    assert prepared.program_for("nrc") is prepared.compiled
    assert prepared.program_for("nrc-codegen") is prepared.generated
    before = prepared.generated.calls
    env = {"S": document}
    assert prepared.evaluate(env) == prepared.evaluate(env, method="nrc")
    assert prepared.generated.calls > before


def test_prepared_query_falls_back_on_srt_plans():
    document = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=3)
    prepared = prepare_query("element out { $S//c }", NATURAL, {"S": document})
    assert prepared.generated is None
    assert "srt" in prepared.codegen_reason
    assert prepared.program is prepared.compiled
    env = {"S": document}
    # nrc-codegen never errors: it serves through the closure fallback.
    assert prepared.evaluate(env, method="nrc-codegen") == prepared.evaluate(
        env, method="nrc"
    )


@pytest.mark.parametrize("semiring_name", available_semirings())
def test_engine_codegen_equals_all_methods(semiring_name):
    semiring = get_semiring(semiring_name)
    document = random_forest(semiring, num_trees=3, depth=3, fanout=2, seed=21)
    env = {"S": document}
    prepared = prepare_query("element out { $S/*/* }", semiring, env)
    results = {
        method: prepared.evaluate(env, method=method)
        for method in ("nrc-codegen", "nrc", "nrc-interp", "direct")
    }
    assert results["nrc-codegen"] == results["nrc"] == results["nrc-interp"]
    assert results["nrc-codegen"] == results["direct"]


def test_generated_program_is_picklable_free():
    """The program exposes the same frame protocol as CompiledExpr."""
    document = random_forest(NATURAL, num_trees=2, depth=2, fanout=2, seed=5)
    prepared = prepare_query("($S)/*", NATURAL, {"S": document})
    generated = prepared.generated
    assert isinstance(generated, CodegenProgram)
    assert generated._num_slots == len(generated._free_slots) == 1
    assert set(generated._free_slots) == set(prepared.compiled.free_variables)
