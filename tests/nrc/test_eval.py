"""Evaluation of NRC_K + srt expressions (the Figure 8 equations)."""

from __future__ import annotations

import pytest

from repro.errors import NRCEvalError
from repro.kcollections import KSet
from repro.nrc import (
    BigUnion,
    EmptySet,
    IfEq,
    Kids,
    LabelLit,
    Let,
    Pair,
    PairExpr,
    Proj,
    Scale,
    Singleton,
    Srt,
    Tag,
    TreeExpr,
    Union,
    Var,
    evaluate,
    flatten_expr,
)
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, variables
from repro.uxml import TreeBuilder, UTree


class TestBasicForms:
    def test_label_and_variable(self):
        assert evaluate(LabelLit("a"), NATURAL) == "a"
        assert evaluate(Var("x"), NATURAL, {"x": "v"}) == "v"

    def test_unbound_variable(self):
        with pytest.raises(NRCEvalError):
            evaluate(Var("x"), NATURAL)

    def test_empty_and_singleton(self):
        assert evaluate(EmptySet(), NATURAL) == KSet.empty(NATURAL)
        assert evaluate(Singleton(LabelLit("a")), NATURAL) == KSet.singleton(NATURAL, "a")

    def test_union_adds_annotations(self):
        expr = Union(Singleton(LabelLit("a")), Singleton(LabelLit("a")))
        assert evaluate(expr, NATURAL).annotation("a") == 2

    def test_scale(self):
        expr = Scale(3, Singleton(LabelLit("a")))
        assert evaluate(expr, NATURAL).annotation("a") == 3

    def test_union_requires_collections(self):
        with pytest.raises(NRCEvalError):
            evaluate(Union(LabelLit("a"), EmptySet()), NATURAL)

    def test_pairs_and_projections(self):
        expr = Proj(2, PairExpr(LabelLit("a"), LabelLit("b")))
        assert evaluate(expr, NATURAL) == "b"
        with pytest.raises(NRCEvalError):
            evaluate(Proj(1, LabelLit("a")), NATURAL)

    def test_conditional_compares_labels_only(self):
        expr = IfEq(LabelLit("a"), LabelLit("a"), LabelLit("yes"), LabelLit("no"))
        assert evaluate(expr, NATURAL) == "yes"
        expr2 = IfEq(LabelLit("a"), LabelLit("b"), LabelLit("yes"), LabelLit("no"))
        assert evaluate(expr2, NATURAL) == "no"
        with pytest.raises(NRCEvalError):
            evaluate(
                IfEq(EmptySet(), EmptySet(), LabelLit("yes"), LabelLit("no")), NATURAL
            )

    def test_let(self):
        expr = Let("x", LabelLit("a"), PairExpr(Var("x"), Var("x")))
        assert evaluate(expr, NATURAL) == Pair("a", "a")


class TestBigUnion:
    def test_flatten_example_from_paper(self):
        """flatten {{a^p, b^r}^u, {b^s}^v} = {a^{u*p}, b^{u*r + v*s}}."""
        p, r, u, v, s = variables("p", "r", "u", "v", "s")
        inner1 = KSet(PROVENANCE, [("a", p), ("b", r)])
        inner2 = KSet(PROVENANCE, [("b", s)])
        outer = KSet(PROVENANCE, [(inner1, u), (inner2, v)])
        result = evaluate(flatten_expr(Var("W")), PROVENANCE, {"W": outer})
        assert result.annotation("a") == u * p
        assert result.annotation("b") == u * r + v * s

    def test_projection_encoding(self):
        """project_1 R = U(x in R) {pi_1(x)}."""
        expr = BigUnion("x", Var("R"), Singleton(Proj(1, Var("x"))))
        relation = KSet(NATURAL, [(Pair("a", "b"), 2), (Pair("a", "c"), 3)])
        result = evaluate(expr, NATURAL, {"R": relation})
        assert result.annotation("a") == 5

    def test_body_must_be_a_collection(self):
        expr = BigUnion("x", Singleton(LabelLit("a")), Var("x"))
        with pytest.raises(NRCEvalError):
            evaluate(expr, NATURAL)

    def test_nested_iteration_multiplies(self):
        expr = BigUnion(
            "x",
            Var("R"),
            BigUnion("y", Var("S"), Singleton(PairExpr(Var("x"), Var("y")))),
        )
        R = KSet(NATURAL, [("a", 2)])
        S = KSet(NATURAL, [("b", 3)])
        result = evaluate(expr, NATURAL, {"R": R, "S": S})
        assert result.annotation(Pair("a", "b")) == 6


class TestTrees:
    def test_tree_construction_and_accessors(self, nat_builder):
        expr = TreeExpr(LabelLit("a"), Singleton(TreeExpr(LabelLit("b"), EmptySet())))
        tree = evaluate(expr, NATURAL)
        assert isinstance(tree, UTree)
        assert evaluate(Tag(Var("t")), NATURAL, {"t": tree}) == "a"
        kids = evaluate(Kids(Var("t")), NATURAL, {"t": tree})
        assert kids.annotation(nat_builder.leaf("b")) == 1

    def test_tree_label_must_be_label(self):
        with pytest.raises(NRCEvalError):
            evaluate(TreeExpr(EmptySet(), EmptySet()), NATURAL)

    def test_tree_children_must_be_trees(self):
        with pytest.raises(NRCEvalError):
            evaluate(TreeExpr(LabelLit("a"), Singleton(LabelLit("b"))), NATURAL)

    def test_tag_requires_tree(self):
        with pytest.raises(NRCEvalError):
            evaluate(Tag(LabelLit("a")), NATURAL)


class TestStructuralRecursion:
    def test_atoms_example_from_paper(self, nat_builder):
        """(srt(x, y). {x} U flatten y) t collects the labels of t."""
        b = nat_builder
        tree = b.tree("a", b.tree("b", b.leaf("d")), b.leaf("c"))
        expr = Srt("x", "y", Union(Singleton(Var("x")), flatten_expr(Var("y"))), Var("t"))
        result = evaluate(expr, NATURAL, {"t": tree})
        assert result.support() == frozenset({"a", "b", "c", "d"})

    def test_annotations_propagate_through_recursion(self, prov_builder):
        b = prov_builder
        x1, y1 = variables("x1", "y1")
        tree = b.tree("a", b.tree("b", b.leaf("d") @ "y1") @ "x1")
        expr = Srt("x", "y", Union(Singleton(Var("x")), flatten_expr(Var("y"))), Var("t"))
        result = evaluate(expr, PROVENANCE, {"t": tree})
        assert result.annotation("d") == x1 * y1
        assert result.annotation("b") == x1
        assert result.annotation("a") == PROVENANCE.one

    def test_target_must_be_a_tree(self):
        expr = Srt("x", "y", Singleton(Var("x")), LabelLit("a"))
        with pytest.raises(NRCEvalError):
            evaluate(expr, NATURAL)

    def test_rebuild_identity(self, nat_builder):
        """srt can rebuild the tree it consumes (the identity on trees)."""
        b = nat_builder
        tree = b.tree("a", b.tree("b", b.leaf("d") @ 2) @ 3, b.leaf("c") @ 4)
        expr = Srt("l", "s", TreeExpr(Var("l"), Var("s")), Var("t"))
        assert evaluate(expr, NATURAL, {"t": tree}) == tree
