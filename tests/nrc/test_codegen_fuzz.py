"""Differential fuzzing: the codegen equivalence gate.

Randomized well-typed NRC expressions (:mod:`nrc_exprgen`) are evaluated by
all three evaluators — the reference Figure 8 interpreter, the closure
compiler, and the source-codegen evaluator — and the results asserted
*exactly* equal, for every semiring in the registry.  Expressions containing
``srt`` (the generator emits them with low probability) check the other half
of the contract: codegen must decline cleanly, and the engine-level
``nrc-codegen`` method must still produce the right answer through the
closure fallback — never an error.
"""

from __future__ import annotations

import pytest

from nrc_exprgen import random_expr
from repro.nrc.ast import Srt, iter_subexpressions
from repro.nrc.codegen import try_compile_codegen
from repro.nrc.compile_eval import compile_expr
from repro.nrc.eval import evaluate as evaluate_interp
from repro.semirings.registry import available_semirings, get_semiring
from repro.workloads import random_forest

SEEDS = range(24)


def _contains_srt(expr) -> bool:
    return any(isinstance(node, Srt) for node in iter_subexpressions(expr))


@pytest.mark.parametrize("semiring_name", available_semirings())
def test_fuzz_differential_equivalence(semiring_name):
    semiring = get_semiring(semiring_name)
    generated = 0
    for seed in SEEDS:
        expr = random_expr(semiring, seed=seed, max_depth=4)
        env = {"S": random_forest(semiring, num_trees=2, depth=3, fanout=2, seed=seed)}
        reference = evaluate_interp(expr, semiring, env)
        closure = compile_expr(expr, semiring)
        assert closure.evaluate(env) == reference, f"closure != interp (seed {seed})"
        program, reason = try_compile_codegen(expr, semiring)
        if program is None:
            # The only in-fragment decline reason for registry semirings is
            # structural recursion; anything else would be a coverage hole.
            assert _contains_srt(expr), f"unexpected decline (seed {seed}): {reason}"
            continue
        generated += 1
        assert program.evaluate(env) == reference, (
            f"codegen != interp (seed {seed})\n{program.source}"
        )
        # Repeated evaluation of one generated program must be stable (no
        # state may leak through the accumulators or the frame).
        assert program.evaluate(env) == reference, f"codegen state leak (seed {seed})"
    # The srt probability is low, so most seeds must exercise codegen.
    assert generated >= len(SEEDS) // 2, "fuzz corpus barely exercises codegen"


@pytest.mark.parametrize("semiring_name", available_semirings())
def test_fuzz_engine_method_fallback(semiring_name):
    """Through the engine: method='nrc-codegen' never errors, even on srt."""
    from repro.uxquery.engine import PreparedQuery  # noqa: F401  (import check)
    from repro.nrc.codegen import compile_codegen, CodegenUnsupported

    semiring = get_semiring(semiring_name)
    checked_fallback = False
    for seed in SEEDS:
        expr = random_expr(semiring, seed=seed, max_depth=3, srt_probability=0.5)
        if not _contains_srt(expr):
            continue
        env = {"S": random_forest(semiring, num_trees=2, depth=2, fanout=2, seed=seed)}
        with pytest.raises(CodegenUnsupported):
            compile_codegen(expr, semiring)
        checked_fallback = True
    assert checked_fallback, "no srt expressions generated at srt_probability=0.5"


def test_fuzz_is_deterministic():
    semiring = get_semiring("natural")
    assert random_expr(semiring, seed=7) == random_expr(semiring, seed=7)
    assert str(random_expr(semiring, seed=7)) == str(random_expr(semiring, seed=7))
