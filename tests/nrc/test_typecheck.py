"""Type checking of NRC_K + srt expressions."""

from __future__ import annotations

import pytest

from repro.errors import NRCTypeError
from repro.nrc import (
    LABEL,
    TREE,
    BigUnion,
    EmptySet,
    IfEq,
    Kids,
    LabelLit,
    Let,
    PairExpr,
    Proj,
    ProductType,
    Scale,
    SetType,
    Singleton,
    Srt,
    Tag,
    TreeExpr,
    Union,
    UnknownType,
    Var,
    flatten_expr,
    typecheck,
)
from repro.semirings import NATURAL


class TestBasicTyping:
    def test_literals_and_variables(self):
        assert typecheck(LabelLit("a")) == LABEL
        assert typecheck(Var("x"), {"x": TREE}) == TREE
        with pytest.raises(NRCTypeError):
            typecheck(Var("x"))

    def test_collections(self):
        assert typecheck(Singleton(LabelLit("a"))) == SetType(LABEL)
        assert isinstance(typecheck(EmptySet()).element, UnknownType)
        assert typecheck(Union(EmptySet(), Singleton(LabelLit("a")))) == SetType(LABEL)

    def test_union_element_mismatch(self):
        with pytest.raises(NRCTypeError):
            typecheck(
                Union(
                    Singleton(LabelLit("a")),
                    Singleton(TreeExpr(LabelLit("t"), EmptySet())),
                )
            )

    def test_union_of_non_collections(self):
        with pytest.raises(NRCTypeError):
            typecheck(Union(LabelLit("a"), LabelLit("b")))

    def test_scale_checks_scalar_against_semiring(self):
        assert typecheck(Scale(2, Singleton(LabelLit("a"))), semiring=NATURAL) == SetType(LABEL)
        with pytest.raises(NRCTypeError):
            typecheck(Scale(-1, Singleton(LabelLit("a"))), semiring=NATURAL)

    def test_big_union(self):
        expr = BigUnion("x", Var("R"), Singleton(Proj(1, Var("x"))))
        assert typecheck(expr, {"R": SetType(ProductType(LABEL, LABEL))}) == SetType(LABEL)

    def test_big_union_body_must_be_collection(self):
        expr = BigUnion("x", Var("R"), Proj(1, Var("x")))
        with pytest.raises(NRCTypeError):
            typecheck(expr, {"R": SetType(ProductType(LABEL, LABEL))})

    def test_conditional_restricted_to_labels(self):
        good = IfEq(LabelLit("a"), LabelLit("b"), Singleton(LabelLit("x")), EmptySet())
        assert typecheck(good) == SetType(LABEL)
        bad = IfEq(EmptySet(), EmptySet(), EmptySet(), EmptySet())
        with pytest.raises(NRCTypeError):
            typecheck(bad)

    def test_conditional_branches_must_agree(self):
        bad = IfEq(LabelLit("a"), LabelLit("b"), LabelLit("x"), EmptySet())
        with pytest.raises(NRCTypeError):
            typecheck(bad)

    def test_pairs_and_projections(self):
        expr = PairExpr(LabelLit("a"), Singleton(LabelLit("b")))
        assert typecheck(expr) == ProductType(LABEL, SetType(LABEL))
        assert typecheck(Proj(2, expr)) == SetType(LABEL)
        with pytest.raises(NRCTypeError):
            typecheck(Proj(1, LabelLit("a")))

    def test_let(self):
        expr = Let("x", Singleton(LabelLit("a")), flatten_expr(Singleton(Var("x"))))
        assert typecheck(expr) == SetType(LABEL)


class TestTreeTyping:
    def test_tree_constructor(self):
        expr = TreeExpr(LabelLit("a"), EmptySet())
        assert typecheck(expr) == TREE
        nested = TreeExpr(LabelLit("a"), Singleton(TreeExpr(LabelLit("b"), EmptySet())))
        assert typecheck(nested) == TREE

    def test_tree_children_must_be_trees(self):
        with pytest.raises(NRCTypeError):
            typecheck(TreeExpr(LabelLit("a"), Singleton(LabelLit("b"))))

    def test_tag_and_kids(self):
        assert typecheck(Tag(Var("t")), {"t": TREE}) == LABEL
        assert typecheck(Kids(Var("t")), {"t": TREE}) == SetType(TREE)
        with pytest.raises(NRCTypeError):
            typecheck(Tag(LabelLit("a")))

    def test_srt_atoms_query(self):
        expr = Srt("x", "y", Union(Singleton(Var("x")), flatten_expr(Var("y"))), Var("t"))
        assert typecheck(expr, {"t": TREE}) == SetType(LABEL)

    def test_srt_rebuild_has_tree_type(self):
        expr = Srt("l", "s", TreeExpr(Var("l"), Var("s")), Var("t"))
        assert typecheck(expr, {"t": TREE}) == TREE

    def test_srt_target_must_be_tree(self):
        expr = Srt("l", "s", TreeExpr(Var("l"), Var("s")), LabelLit("a"))
        with pytest.raises(NRCTypeError):
            typecheck(expr)

    def test_descendant_compilation_typechecks(self):
        """The compiled descendant-or-self step has type {tree}."""
        from repro.uxquery.ast import Step
        from repro.uxquery.compile import compile_step

        expr = compile_step(Var("e"), Step("descendant-or-self", "*"))
        assert typecheck(expr, {"e": SetType(TREE)}) == SetType(TREE)
