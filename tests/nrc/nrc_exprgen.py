"""Random well-typed NRC_K expression generator for the differential fuzz gate.

:func:`random_expr` builds a forest-valued NRC_K + srt expression over a free
forest variable ``$S``, type-directed so every generated program is well
typed: label positions get labels, tree positions trees, collection positions
K-sets of trees (plus an occasional K-set of labels for variety).  The
generator covers every straight-line node kind — singleton, union, scaling by
semiring sample elements, big unions with shadowing-prone variable reuse,
conditionals, pairs with projections, tree construction/destructuring, lets —
and, with low probability, ``srt`` structural recursion, which the codegen
evaluator must *decline* (and the engine must transparently serve through the
closure fallback) rather than miscompile.

The generated expressions are the input of ``tests/nrc/test_codegen_fuzz.py``:
every expression is evaluated by the reference interpreter, the closure
evaluator and (when generation succeeds) the source-codegen evaluator, and
the three results are asserted exactly equal for every registry semiring.
"""

from __future__ import annotations

import random

from repro.nrc.ast import (
    BigUnion,
    EmptySet,
    Expr,
    IfEq,
    Kids,
    LabelLit,
    Let,
    PairExpr,
    Proj,
    Scale,
    Singleton,
    Srt,
    Tag,
    TreeExpr,
    Union,
    Var,
)
from repro.semirings.base import Semiring

__all__ = ["random_expr"]

LABELS = ("a", "b", "c", "d")

#: Variable kinds tracked by the scope (the generator's little type system).
LABEL, TREE, FOREST = "label", "tree", "forest"


class _Gen:
    def __init__(self, semiring: Semiring, rng: random.Random, srt_probability: float):
        self.semiring = semiring
        self.rng = rng
        self.srt_probability = srt_probability
        self._counter = 0
        #: (name, kind) pairs; later entries shadow earlier ones on purpose —
        #: names are drawn from a small pool so shadowing actually happens.
        self.scope: list[tuple[str, str]] = []

    # --------------------------------------------------------------- helpers
    def fresh_name(self) -> str:
        # A tiny name pool maximizes shadowing and sibling-scope reuse, the
        # binder shapes whose slot/local allocation must be exactly right.
        self._counter += 1
        return f"v{self._counter % 3}"

    def vars_of(self, kind: str) -> list[str]:
        names = []
        seen = set()
        for name, var_kind in reversed(self.scope):
            if name in seen:
                continue  # shadowed
            seen.add(name)
            if var_kind == kind:
                names.append(name)
        return names

    def scalar(self):
        return self.rng.choice(list(self.semiring.sample_elements()))

    # -------------------------------------------------------------- by kind
    def label(self, depth: int) -> Expr:
        candidates = self.vars_of(LABEL)
        roll = self.rng.random()
        if candidates and roll < 0.3:
            return Var(self.rng.choice(candidates))
        if depth > 0 and roll < 0.45:
            return Tag(self.tree(depth - 1))
        if depth > 0 and roll < 0.55:
            return IfEq(
                self.label(depth - 1),
                self.label(depth - 1),
                self.label(depth - 1),
                self.label(depth - 1),
            )
        if depth > 0 and roll < 0.62:
            return Proj(1, PairExpr(self.label(depth - 1), self.label(depth - 1)))
        return LabelLit(self.rng.choice(LABELS))

    def tree(self, depth: int) -> Expr:
        candidates = self.vars_of(TREE)
        roll = self.rng.random()
        if candidates and roll < 0.55:
            return Var(self.rng.choice(candidates))
        if depth > 0 and roll < 0.62:
            return Proj(2, PairExpr(self.label(depth - 1), self.tree(depth - 1)))
        if depth > 0:
            return TreeExpr(self.label(depth - 1), self.forest(depth - 1))
        if candidates:
            return Var(self.rng.choice(candidates))
        return TreeExpr(LabelLit(self.rng.choice(LABELS)), EmptySet())

    def forest(self, depth: int) -> Expr:
        roll = self.rng.random()
        if depth <= 0:
            candidates = self.vars_of(FOREST)
            if candidates and roll < 0.5:
                return Var(self.rng.choice(candidates))
            if roll < 0.75:
                return Singleton(self.tree(0))
            return EmptySet()
        if roll < 0.08:
            return EmptySet()
        if roll < 0.2:
            candidates = self.vars_of(FOREST)
            if candidates:
                return Var(self.rng.choice(candidates))
            return Singleton(self.tree(depth - 1))
        if roll < 0.34:
            return Singleton(self.tree(depth - 1))
        if roll < 0.46:
            return Union(self.forest(depth - 1), self.forest(depth - 1))
        if roll < 0.54:
            return Scale(self.scalar(), self.forest(depth - 1))
        if roll < 0.62:
            return Kids(self.tree(depth - 1))
        if roll < 0.7:
            return IfEq(
                self.label(depth - 1),
                self.label(depth - 1),
                self.forest(depth - 1),
                self.forest(depth - 1),
            )
        if roll < 0.78:
            kind = self.rng.choice((LABEL, TREE, FOREST))
            value = {LABEL: self.label, TREE: self.tree, FOREST: self.forest}[kind](depth - 1)
            name = self.fresh_name()
            self.scope.append((name, kind))
            try:
                body = self.forest(depth - 1)
            finally:
                self.scope.pop()
            return Let(name, value, body)
        if roll < 0.78 + self.srt_probability:
            return self.srt(depth)
        # Big union: U(x in forest) forest-body, the fused-loop workhorse.
        source = self.forest(depth - 1)
        name = self.fresh_name()
        self.scope.append((name, TREE))
        try:
            body = self.forest(depth - 1)
        finally:
            self.scope.pop()
        return BigUnion(name, source, body)

    def srt(self, depth: int) -> Expr:
        """A forest-valued structural recursion (rebuilds/relabels subtrees).

        The body is forest-valued, so the accumulator is a K-set *of
        forests* (one per child's recursive result); it is flattened with a
        big union before becoming the children of the rebuilt node.  The
        accumulator variable is deliberately kept out of the random scope —
        its kind ({forest}) has no place in the generator's type system.
        """
        target = self.tree(depth - 1)
        label_var = self.fresh_name()
        acc_var = f"acc{self._counter % 2}"
        self.scope.append((label_var, LABEL))
        try:
            extra = self.forest(min(depth - 1, 1))
        finally:
            self.scope.pop()
        flattened = BigUnion("z", Var(acc_var), Var("z"))
        body = Union(Singleton(TreeExpr(Var(label_var), flattened)), extra)
        return Srt(label_var, acc_var, body, target)


def random_expr(
    semiring: Semiring,
    seed: int,
    max_depth: int = 4,
    srt_probability: float = 0.08,
) -> Expr:
    """A random, well-typed, forest-valued expression over the free ``$S``."""
    # String seeds hash stably across processes (unlike str.__hash__ under
    # PYTHONHASHSEED), so failures reproduce from the reported seed.
    rng = random.Random(f"{seed}:{semiring.name}")
    generator = _Gen(semiring, rng, srt_probability)
    generator.scope.append(("S", FOREST))
    return generator.forest(max_depth)
