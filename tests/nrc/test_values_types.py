"""NRC complex values, types and unification."""

from __future__ import annotations

import pytest

from repro.errors import NRCEvalError, NRCTypeError
from repro.kcollections import KSet
from repro.nrc import (
    LABEL,
    TREE,
    UNKNOWN,
    Pair,
    ProductType,
    SetType,
    infer_type,
    is_complex_value,
    map_value_annotations,
    unify,
    value_to_str,
)
from repro.semirings import BOOLEAN, NATURAL, duplicate_elimination
from repro.uxml import TreeBuilder, leaf


class TestPair:
    def test_projections(self):
        pair = Pair("a", "b")
        assert pair.first == "a"
        assert pair.project(1) == "a"
        assert pair.project(2) == "b"
        with pytest.raises(NRCEvalError):
            pair.project(3)

    def test_equality_and_hash(self):
        assert Pair("a", Pair("b", "c")) == Pair("a", Pair("b", "c"))
        assert hash(Pair("a", "b")) == hash(Pair("a", "b"))
        assert Pair("a", "b") != Pair("b", "a")

    def test_immutability(self):
        with pytest.raises(AttributeError):
            Pair("a", "b").first = "c"  # type: ignore[misc]


class TestTypes:
    def test_rendering(self):
        assert str(SetType(ProductType(LABEL, TREE))) == "{(label x tree)}"

    def test_unify_unknown(self):
        assert unify(UNKNOWN, TREE) == TREE
        assert unify(SetType(UNKNOWN), SetType(LABEL)) == SetType(LABEL)

    def test_unify_structural(self):
        assert unify(ProductType(LABEL, UNKNOWN), ProductType(UNKNOWN, TREE)) == ProductType(LABEL, TREE)

    def test_unify_mismatch_raises(self):
        with pytest.raises(NRCTypeError):
            unify(LABEL, TREE)
        with pytest.raises(NRCTypeError):
            unify(SetType(LABEL), ProductType(LABEL, LABEL))

    def test_type_equality(self):
        assert SetType(LABEL) == SetType(LABEL)
        assert SetType(LABEL) != SetType(TREE)
        assert hash(ProductType(LABEL, TREE)) == hash(ProductType(LABEL, TREE))


class TestValueHelpers:
    def test_is_complex_value(self):
        assert is_complex_value("label")
        assert is_complex_value(Pair("a", "b"))
        assert is_complex_value(KSet.empty(NATURAL))
        assert is_complex_value(leaf(NATURAL, "x"))
        assert not is_complex_value(42)

    def test_infer_type(self):
        assert infer_type("a") == LABEL
        assert infer_type(leaf(NATURAL, "x")) == TREE
        assert infer_type(Pair("a", KSet.empty(NATURAL))) == ProductType(LABEL, SetType(UNKNOWN))
        assert infer_type(KSet.singleton(NATURAL, "a")) == SetType(LABEL)

    def test_infer_type_rejects_garbage(self):
        with pytest.raises(NRCEvalError):
            infer_type(3.14)

    def test_value_to_str(self):
        builder = TreeBuilder(NATURAL)
        value = Pair("a", KSet(NATURAL, [("b", 2)]))
        assert value_to_str(value) == "(a, {b^{2}})"
        assert value_to_str(builder.leaf("x")) == "x"

    def test_map_value_annotations_deep(self):
        builder = TreeBuilder(NATURAL)
        value = Pair(
            "a",
            KSet(NATURAL, [(builder.tree("t", builder.leaf("u") @ 2), 3)]),
        )
        mapped = map_value_annotations(value, duplicate_elimination())
        bool_builder = TreeBuilder(BOOLEAN)
        expected = Pair(
            "a",
            KSet(BOOLEAN, [(bool_builder.tree("t", bool_builder.leaf("u")), True)]),
        )
        assert mapped == expected

    def test_map_value_annotations_rejects_garbage(self):
        with pytest.raises(NRCEvalError):
            map_value_annotations(object(), lambda x: x)
