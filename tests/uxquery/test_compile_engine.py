"""Compilation to NRC_K + srt and the high-level query engine."""

from __future__ import annotations

import pytest

from repro.errors import UXQueryEvalError, UXQueryTypeError
from repro.kcollections import KSet
from repro.nrc import (
    BigUnion,
    Scale,
    Singleton,
    TreeExpr,
    Var,
    evaluate as evaluate_nrc,
    typecheck,
)
from repro.nrc.types import SetType, TREE as NRC_TREE
from repro.semirings import BOOLEAN, NATURAL, POSBOOL, PROVENANCE, BoolExpr, Polynomial
from repro.uxquery import (
    FOREST,
    PreparedQuery,
    Step,
    compile_step,
    compile_to_nrc,
    env_types_of,
    evaluate_direct,
    evaluate_query,
    normalize,
    parse_query,
    prepare_query,
    resolve_annotation,
)
from repro.uxquery.ast import VarExpr


class TestResolveAnnotation:
    def test_accepts_elements(self):
        assert resolve_annotation(3, NATURAL) == 3
        x = Polynomial.variable("x")
        assert resolve_annotation(x, PROVENANCE) == x

    def test_parses_text(self):
        assert resolve_annotation("3", NATURAL) == 3
        assert resolve_annotation("x1*y1", PROVENANCE) == Polynomial.parse("x1*y1")
        assert resolve_annotation("e1", POSBOOL) == BoolExpr.variable("e1")

    def test_rejects_garbage(self):
        with pytest.raises(UXQueryTypeError):
            resolve_annotation("not a number", NATURAL)
        with pytest.raises(UXQueryTypeError):
            resolve_annotation(3.5, NATURAL)


class TestCompilation:
    def test_compiled_queries_typecheck(self, figure1_environment):
        from repro.paperdata import figure1_query, figure5_uxquery, figure4_query

        for text, env in [
            (figure1_query(), {"S": FOREST}),
            (figure4_query(), {"T": FOREST}),
            (figure5_uxquery(), {"d": FOREST}),
        ]:
            core = normalize(parse_query(text), env)
            expr = compile_to_nrc(core, PROVENANCE, env)
            nrc_env = {name: SetType(NRC_TREE) for name in env}
            assert typecheck(expr, nrc_env, PROVENANCE) in (SetType(NRC_TREE), NRC_TREE)

    def test_trees_are_coerced_to_singletons(self):
        expr = compile_to_nrc(parse_query("element a { element b {} }"), NATURAL, {})
        assert isinstance(expr, TreeExpr)
        assert isinstance(expr.kids, Singleton)

    def test_for_compiles_to_big_union(self):
        expr = compile_to_nrc(parse_query("for $x in $S return ($x)"), NATURAL, {"S": FOREST})
        assert isinstance(expr, BigUnion)

    def test_annot_compiles_to_scale(self):
        expr = compile_to_nrc(parse_query("annot 3 ($S)"), NATURAL, {"S": FOREST})
        assert isinstance(expr, Scale)
        assert expr.scalar == 3

    def test_non_core_queries_are_rejected(self):
        query = parse_query("for $x in $R, $y in $S return ($x)")
        with pytest.raises(UXQueryTypeError):
            compile_to_nrc(query, NATURAL, {"R": FOREST, "S": FOREST})

    def test_unbound_variable(self):
        with pytest.raises(UXQueryTypeError):
            compile_to_nrc(parse_query("$missing"), NATURAL, {})

    def test_label_cannot_be_a_forest(self):
        with pytest.raises(UXQueryTypeError):
            compile_to_nrc(parse_query("(a, b)"), NATURAL, {})

    def test_compile_step_self_child(self, nat_builder):
        b = nat_builder
        forest = b.forest(b.tree("a", b.leaf("c") @ 2, b.leaf("d") @ 3))
        for step, expected in [
            (Step("self", "a"), {"a[ c^{2} d^{3} ]"}),
            (Step("child", "c"), {"c"}),
            (Step("child", "*"), {"c", "d"}),
        ]:
            expr = compile_step(Var("S"), step)
            result = evaluate_nrc(expr, NATURAL, {"S": forest})
            from repro.uxml import to_paper_notation

            assert {to_paper_notation(tree) for tree in result} == expected


class TestEngine:
    def test_env_types_of(self, nat_builder):
        b = nat_builder
        env = {"S": b.forest(b.leaf("a")), "t": b.leaf("a"), "l": "label"}
        assert env_types_of(env) == {"S": FOREST, "t": "tree", "l": "label"}
        with pytest.raises(UXQueryEvalError):
            env_types_of({"bad": 42})

    def test_prepared_query_reuse(self, nat_builder):
        b = nat_builder
        forest = b.forest(b.tree("a", b.leaf("x") @ 2))
        prepared = prepare_query("element out { $S/* }", NATURAL, {"S": forest})
        first = prepared.evaluate({"S": forest})
        second = prepared.evaluate({"S": b.forest(b.tree("a", b.leaf("y") @ 5))})
        assert first.children.annotation(b.leaf("x")) == 2
        assert second.children.annotation(b.leaf("y")) == 5
        assert prepared.surface_size > 0
        assert prepared.nrc_size >= prepared.surface_size

    def test_unknown_method_rejected(self, nat_builder):
        b = nat_builder
        prepared = prepare_query("($S)", NATURAL, {"S": b.forest(b.leaf("a"))})
        with pytest.raises(UXQueryEvalError):
            prepared.evaluate({"S": b.forest(b.leaf("a"))}, method="sql")

    def test_evaluate_query_both_methods_agree(self, nat_builder):
        b = nat_builder
        forest = b.forest(
            b.tree("a", b.tree("b", b.leaf("c") @ 2) @ 3, b.leaf("c") @ 4) @ 2
        )
        query = "element out { $S//c }"
        assert evaluate_query(query, NATURAL, {"S": forest}) == evaluate_query(
            query, NATURAL, {"S": forest}, method="direct"
        )

    def test_query_without_environment(self):
        result = evaluate_query("element a { element b {}, element c {} }", BOOLEAN)
        assert result.label == "a"
        assert len(result.children) == 2

    def test_annot_builds_arbitrary_collections(self):
        result = evaluate_query("annot 3 (element a {}), annot 2 (element a {})", NATURAL)
        assert result.total_annotation() == 5

    def test_boolean_idempotence(self):
        result = evaluate_query("(element a {}), (element a {})", BOOLEAN)
        assert result.total_annotation() is True


class TestDirectInterpreter:
    def test_rejects_sugar(self, nat_builder):
        b = nat_builder
        query = parse_query("for $x in $R, $y in $S return ($x)")
        with pytest.raises(UXQueryEvalError):
            evaluate_direct(query, NATURAL, {"R": b.forest(), "S": b.forest()})

    def test_conditionals_and_name(self, nat_builder):
        b = nat_builder
        forest = b.forest(b.tree("a", b.leaf("hit") @ 2), b.tree("b", b.leaf("miss")))
        query = normalize(
            parse_query("for $x in $S return if (name($x) = a) then ($x)/* else ()"),
            {"S": FOREST},
        )
        result = evaluate_direct(query, NATURAL, {"S": forest})
        assert result.annotation(b.leaf("hit")) == 2
        assert b.leaf("miss") not in result

    def test_element_and_annot(self, nat_builder):
        b = nat_builder
        query = normalize(parse_query("element r { annot 5 (element leaf {}) }"), {})
        result = evaluate_direct(query, NATURAL, {})
        assert result.children.annotation(b.leaf("leaf")) == 5
