"""Typing (Figure 3) and normalization of the K-UXQuery surface syntax."""

from __future__ import annotations

import pytest

from repro.errors import UXQueryTypeError
from repro.semirings import NATURAL
from repro.uxquery import (
    FOREST,
    LABEL,
    TREE,
    ForExpr,
    IfEqExpr,
    LetExpr,
    evaluate_query,
    infer_type,
    is_core,
    normalize,
    parse_query,
)


class TestTyping:
    def test_literals(self):
        assert infer_type(parse_query("a")) == LABEL
        assert infer_type(parse_query("()")) == FOREST

    def test_variables_use_environment(self):
        assert infer_type(parse_query("$x"), {"x": TREE}) == TREE
        with pytest.raises(UXQueryTypeError):
            infer_type(parse_query("$x"))

    def test_element_is_a_tree(self):
        assert infer_type(parse_query("element a { () }")) == TREE
        assert infer_type(parse_query("<a> b </a>")) == TREE

    def test_element_name_must_be_label(self):
        with pytest.raises(UXQueryTypeError):
            infer_type(parse_query("element $x { () }"), {"x": TREE})

    def test_name_requires_tree(self):
        assert infer_type(parse_query("name($x)"), {"x": TREE}) == LABEL
        with pytest.raises(UXQueryTypeError):
            infer_type(parse_query("name($x)"), {"x": FOREST})

    def test_paths_produce_forests(self):
        assert infer_type(parse_query("$S/a//b"), {"S": FOREST}) == FOREST
        assert infer_type(parse_query("$t/a"), {"t": TREE}) == FOREST

    def test_path_source_cannot_be_label(self):
        with pytest.raises(UXQueryTypeError):
            infer_type(parse_query("$l/a"), {"l": LABEL})

    def test_for_binds_trees(self):
        query = parse_query("for $x in $S return name($x)")
        with pytest.raises(UXQueryTypeError):
            infer_type(query, {"S": FOREST})  # body must be a tree or forest
        good = parse_query("for $x in $S return ($x)")
        assert infer_type(good, {"S": FOREST}) == FOREST

    def test_let_propagates_types(self):
        query = parse_query("let $n := name($x) return element b { () }")
        assert infer_type(query, {"x": TREE}) == TREE

    def test_conditional_requires_labels(self):
        good = parse_query("if (name($x) = a) then ($x) else ()")
        assert infer_type(good, {"x": TREE}) == FOREST
        bad = parse_query("if ($S = a) then ($S) else ()")
        with pytest.raises(UXQueryTypeError):
            infer_type(bad, {"S": FOREST})

    def test_conditional_branches_coerce_to_forest(self):
        query = parse_query("if (a = b) then element t { () } else ()")
        assert infer_type(query) == FOREST

    def test_where_clause_kinds(self):
        mixed = parse_query("for $x in $S, $y in $S where name($x) = $y/B return ($x)")
        with pytest.raises(UXQueryTypeError):
            infer_type(mixed, {"S": FOREST})

    def test_annot_types(self):
        assert infer_type(parse_query("annot 2 ($S)"), {"S": FOREST}) == FOREST
        with pytest.raises(UXQueryTypeError):
            infer_type(parse_query("annot 2 name($x)"), {"x": TREE})


class TestNormalization:
    def test_multi_binding_for_becomes_nested(self):
        query = parse_query("for $x in $R, $y in $S return ($x, $y)")
        core = normalize(query, {"R": FOREST, "S": FOREST})
        assert isinstance(core, ForExpr)
        assert len(core.bindings) == 1
        assert isinstance(core.body, ForExpr)
        assert is_core(core)

    def test_multi_binding_let_becomes_nested(self):
        query = parse_query("let $a := $S, $b := ($a) return ($b)")
        core = normalize(query, {"S": FOREST})
        assert isinstance(core, LetExpr)
        assert len(core.bindings) == 1
        assert isinstance(core.body, LetExpr)
        assert is_core(core)

    def test_label_where_clause_becomes_conditional(self):
        query = parse_query(
            "for $x in $S, $y in $S where name($x) = name($y) return element p { ($x) }"
        )
        core = normalize(query, {"S": FOREST})
        assert is_core(core)
        inner = core.body
        assert isinstance(inner, ForExpr)
        assert isinstance(inner.body, IfEqExpr)

    def test_set_where_clause_iterates_children(self):
        """The paper's normalization: where $x/B = $y/B iterates over .../B/*."""
        query = parse_query("for $x in $R, $y in $S where $x/B = $y/B return ($x)")
        core = normalize(query, {"R": FOREST, "S": FOREST})
        assert is_core(core)
        # The innermost guard compares names of the iterated children.
        node = core
        depth = 0
        while isinstance(node, ForExpr):
            node = node.body
            depth += 1
        assert depth == 4  # two bindings + two comparison loops
        assert isinstance(node, IfEqExpr)

    def test_and_conditions_nest(self):
        query = parse_query(
            "for $x in $R, $y in $S where name($x) = name($y) and $x/B = $y/B return ($x)"
        )
        core = normalize(query, {"R": FOREST, "S": FOREST})
        assert is_core(core)

    def test_normalization_preserves_semantics(self, nat_builder):
        b = nat_builder
        source = b.forest(
            b.record("t", [("A", "1"), ("B", "x")]) @ 2,
            b.record("t", [("A", "2"), ("B", "y")]) @ 3,
        )
        query = "element out { for $x in $S, $y in $S where $x/B = $y/B return <p> { $x/A, $y/A } </> }"
        direct = evaluate_query(query, NATURAL, {"S": source}, method="direct")
        compiled = evaluate_query(query, NATURAL, {"S": source}, method="nrc")
        assert direct == compiled
        # self-joins on B produce exactly the diagonal pairs with squared annotations
        assert len(direct.children) == 2

    def test_core_queries_are_fixed_points(self):
        query = parse_query("for $x in $S return ($x)")
        assert normalize(query, {"S": FOREST}) == query
