"""Lexing and parsing of the K-UXQuery surface syntax."""

from __future__ import annotations

import pytest

from repro.errors import UXQuerySyntaxError
from repro.uxquery import (
    AnnotExpr,
    ElementExpr,
    EmptySeq,
    EqCondition,
    ForExpr,
    IfEqExpr,
    LabelExpr,
    LetExpr,
    NameExpr,
    PathExpr,
    Sequence,
    Step,
    VarExpr,
    parse_query,
    query_size,
    tokenize,
)


class TestLexer:
    def test_variables_and_names(self):
        kinds = [(token.kind, token.value) for token in tokenize("for $x in items")]
        assert kinds[:4] == [("KEYWORD", "for"), ("VAR", "x"), ("KEYWORD", "in"), ("NAME", "items")]

    def test_symbols(self):
        values = [token.value for token in tokenize("$a//b/c::*")][:-1]
        assert values == ["a", "//", "b", "/", "c", "::", "*"]

    def test_strings(self):
        tokens = tokenize("'hello world' \"x\"")
        assert tokens[0].kind == "STRING" and tokens[0].value == "hello world"
        assert tokens[1].value == "x"

    def test_comments_are_skipped(self):
        tokens = tokenize("(: a comment :) a")
        assert [token.kind for token in tokens] == ["NAME", "EOF"]

    def test_unknown_character(self):
        with pytest.raises(UXQuerySyntaxError):
            tokenize("a ; b")

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "EOF"


class TestParserBasics:
    def test_label_and_variable(self):
        assert parse_query("a") == LabelExpr("a")
        assert parse_query("$x") == VarExpr("x")

    def test_empty_sequence(self):
        assert parse_query("()") == EmptySeq()

    def test_parenthesized_singleton(self):
        assert parse_query("($x)") == Sequence((VarExpr("x"),))

    def test_comma_sequences(self):
        parsed = parse_query("$x, $y, a")
        assert parsed == Sequence((VarExpr("x"), VarExpr("y"), LabelExpr("a")))

    def test_paths_with_shorthand(self):
        parsed = parse_query("$d/R/*")
        assert parsed == PathExpr(VarExpr("d"), (Step("child", "R"), Step("child", "*")))

    def test_paths_with_axes(self):
        parsed = parse_query("$d/descendant::c/self::*")
        assert parsed == PathExpr(
            VarExpr("d"), (Step("descendant", "c"), Step("self", "*"))
        )

    def test_double_slash_expands(self):
        parsed = parse_query("$T//c")
        assert parsed == PathExpr(
            VarExpr("T"), (Step("descendant-or-self", "*"), Step("child", "c"))
        )

    def test_unknown_axis_rejected(self):
        with pytest.raises(ValueError):
            Step("parent", "*")

    def test_name_function(self):
        assert parse_query("name($x)") == NameExpr(VarExpr("x"))

    def test_name_as_plain_label(self):
        assert parse_query("name") == LabelExpr("name")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(UXQuerySyntaxError):
            parse_query("$x $y")

    def test_query_size(self):
        assert query_size(parse_query("$d/R/*")) == 4


class TestParserCompound:
    def test_for_with_single_binding(self):
        parsed = parse_query("for $x in $S return ($x)")
        assert isinstance(parsed, ForExpr)
        assert parsed.bindings == (("x", VarExpr("S")),)
        assert parsed.condition is None

    def test_for_with_multiple_bindings_and_where(self):
        parsed = parse_query("for $x in $R, $y in $S where $x/B = $y/B return ($x)")
        assert isinstance(parsed, ForExpr)
        assert len(parsed.bindings) == 2
        assert isinstance(parsed.condition, EqCondition)

    def test_let_with_multiple_bindings(self):
        parsed = parse_query("let $a := $S, $b := ($a)/* return ($b)")
        assert isinstance(parsed, LetExpr)
        assert [name for name, _ in parsed.bindings] == ["a", "b"]

    def test_if_expression(self):
        parsed = parse_query("if (name($x) = a) then ($x) else ()")
        assert isinstance(parsed, IfEqExpr)
        assert parsed.right == LabelExpr("a")

    def test_element_keyword_form(self):
        parsed = parse_query("element b { $q }")
        assert parsed == ElementExpr(LabelExpr("b"), VarExpr("q"))
        assert parse_query("element b {}") == ElementExpr(LabelExpr("b"), EmptySeq())

    def test_annot(self):
        parsed = parse_query("annot k1 ($x)")
        assert parsed == AnnotExpr("k1", Sequence((VarExpr("x"),)))
        quoted = parse_query("annot 'x1*y1 + 1' ($x)")
        assert isinstance(quoted, AnnotExpr) and quoted.annotation == "x1*y1 + 1"

    def test_annot_requires_literal(self):
        with pytest.raises(UXQuerySyntaxError):
            parse_query("annot ($x) ($y)")

    def test_xml_constructor_basic(self):
        parsed = parse_query("<t> { $x/A, $x/B } </>")
        assert isinstance(parsed, ElementExpr)
        assert parsed.name == LabelExpr("t")
        assert isinstance(parsed.content, Sequence)

    def test_xml_constructor_with_matching_close(self):
        parsed = parse_query("<Q> { $x } </Q>")
        assert parsed.name == LabelExpr("Q")

    def test_xml_constructor_mismatched_close(self):
        with pytest.raises(UXQuerySyntaxError):
            parse_query("<Q> { $x } </R>")

    def test_xml_constructor_self_closing_and_nested(self):
        parsed = parse_query("<a> <b/> word </a>")
        assert isinstance(parsed, ElementExpr)
        assert isinstance(parsed.content, Sequence)
        assert ElementExpr(LabelExpr("b"), EmptySeq()) in parsed.content.items
        assert ElementExpr(LabelExpr("word"), EmptySeq()) in parsed.content.items

    def test_unterminated_constructor(self):
        with pytest.raises(UXQuerySyntaxError):
            parse_query("<a> { $x }")

    def test_figure5_query_parses(self):
        from repro.paperdata import figure5_uxquery

        parsed = parse_query(figure5_uxquery())
        assert isinstance(parsed, LetExpr)
        assert len(parsed.bindings) == 4

    def test_paper_figure1_query_parses(self):
        from repro.paperdata import figure1_query

        parsed = parse_query(figure1_query())
        assert isinstance(parsed, ElementExpr)

    def test_str_round_trip(self):
        text = "for $x in $S return element out { ($x)/* }"
        parsed = parse_query(text)
        assert parse_query(str(parsed)) == parsed
