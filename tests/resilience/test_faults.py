"""The failpoint registry: triggers, actions, scoping, env inheritance."""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.errors import FaultInjected, ResilienceError
from repro.resilience import (
    ENV_VAR,
    SITE_CATALOG,
    SimulatedCrash,
    arm,
    arm_from_env,
    armed_sites,
    corrupt_file,
    declare_site,
    disarm,
    disarm_all,
    env_spec,
    fail_at,
    fail_point,
    faults_armed,
)

SITE = "wal.append.fsync"  # any catalogued site works for registry tests


class TestRegistry:
    def test_unarmed_fail_point_is_a_no_op(self):
        fail_point(SITE)  # must not raise

    def test_unknown_site_is_rejected(self):
        with pytest.raises(ResilienceError, match="unknown failpoint site"):
            arm("no.such.site")

    def test_unknown_action_is_rejected(self):
        with pytest.raises(ResilienceError, match="unknown failpoint action"):
            arm(SITE, action="explode")

    def test_option_validation(self):
        with pytest.raises(ResilienceError, match="hits must be >= 1"):
            arm(SITE, hits=0)
        with pytest.raises(ResilienceError, match="times must be >= 0"):
            arm(SITE, times=-1)
        with pytest.raises(ResilienceError, match="probability must be in"):
            arm(SITE, probability=1.5)

    def test_arm_disarm_round_trip(self):
        arm(SITE)
        assert SITE in armed_sites()
        disarm(SITE)
        assert SITE not in armed_sites()
        fail_point(SITE)  # disarmed again: no-op

    def test_disarm_all(self):
        arm(SITE)
        arm("wal.truncate")
        disarm_all()
        assert armed_sites() == {}

    def test_declare_site_registers_ad_hoc_sites(self):
        declare_site("test.ad_hoc", "a site declared by the test-suite")
        try:
            assert "test.ad_hoc" in SITE_CATALOG
            with fail_at("test.ad_hoc"):
                with pytest.raises(FaultInjected):
                    fail_point("test.ad_hoc")
        finally:
            SITE_CATALOG.pop("test.ad_hoc", None)

    def test_catalog_covers_durability_and_exec_boundaries(self):
        for site in (
            "wal.append.write",
            "wal.append.torn",
            "wal.append.fsync",
            "wal.truncate",
            "snapshot.write",
            "snapshot.fsync",
            "snapshot.replace",
            "snapshot.dirfsync",
            "store.ingest.apply",
            "store.update.apply",
            "store.view.apply",
            "exec.worker.task",
        ):
            assert site in SITE_CATALOG, site


class TestTriggers:
    def test_fires_once_by_default(self):
        with fail_at(SITE) as point:
            with pytest.raises(FaultInjected):
                fail_point(SITE)
            fail_point(SITE)  # times=1 default: second hit passes
        assert point.fired == 1
        assert point.hit_count == 2

    def test_hits_skips_early_hits(self):
        with fail_at(SITE, hits=3) as point:
            fail_point(SITE)
            fail_point(SITE)
            with pytest.raises(FaultInjected):
                fail_point(SITE)
        assert point.fired == 1

    def test_times_zero_fires_every_eligible_hit(self):
        with fail_at(SITE, times=0) as point:
            for _ in range(3):
                with pytest.raises(FaultInjected):
                    fail_point(SITE)
        assert point.fired == 3

    def test_times_caps_firings(self):
        with fail_at(SITE, times=2) as point:
            with pytest.raises(FaultInjected):
                fail_point(SITE)
            with pytest.raises(FaultInjected):
                fail_point(SITE)
            fail_point(SITE)
        assert point.fired == 2

    def test_probability_is_deterministic_for_a_seed(self):
        def pattern() -> list[bool]:
            fired = []
            with fail_at(SITE, probability=0.5, seed=42, times=0):
                for _ in range(20):
                    try:
                        fail_point(SITE)
                        fired.append(False)
                    except FaultInjected:
                        fired.append(True)
            return fired

        first, second = pattern(), pattern()
        assert first == second
        assert any(first) and not all(first)  # p=0.5 over 20 draws

    def test_flag_file_fires_exactly_once(self, tmp_path):
        flag = tmp_path / "fired"
        with fail_at(SITE, flag=str(flag), times=0) as point:
            with pytest.raises(FaultInjected):
                fail_point(SITE)
            fail_point(SITE)  # flag exists: every later hit passes
        assert point.fired == 1
        assert flag.read_text() == str(os.getpid())


class TestActions:
    def test_crash_is_a_base_exception(self):
        with fail_at(SITE, action="crash"):
            with pytest.raises(SimulatedCrash) as info:
                try:
                    fail_point(SITE)
                except Exception:  # noqa: BLE001 - the point of the test
                    pytest.fail("SimulatedCrash must sail past `except Exception`")
        assert info.value.site == SITE
        assert not isinstance(info.value, Exception)

    def test_delay_sleeps_then_continues(self):
        with fail_at(SITE, action="delay", delay_s=0.02):
            start = time.monotonic()
            fail_point(SITE)
            assert time.monotonic() - start >= 0.015


class TestCorruptAction:
    def test_corrupt_file_flip_is_deterministic_per_seed(self, tmp_path):
        for name in ("a.bin", "b.bin"):
            path = tmp_path / name
            path.write_bytes(b"0123456789" * 4)
            corrupt_file(path, "flip", seed=7)
        assert (tmp_path / "a.bin").read_bytes() == (tmp_path / "b.bin").read_bytes()
        assert (tmp_path / "a.bin").read_bytes() != b"0123456789" * 4

    def test_corrupt_file_respects_the_byte_region(self, tmp_path):
        path = tmp_path / "a.bin"
        original = b"0123456789" * 4
        path.write_bytes(original)
        corrupt_file(path, "flip", seed=3, start=10, end=20, flips=5)
        damaged = path.read_bytes()
        assert damaged[:10] == original[:10]
        assert damaged[20:] == original[20:]
        assert damaged[10:20] != original[10:20]

    def test_corrupt_file_truncate_cuts_inside_the_region(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"0123456789" * 4)
        corrupt_file(path, "truncate", seed=5, start=10, end=20)
        assert 10 <= len(path.read_bytes()) < 20

    def test_corrupt_file_garbage_splices_a_junk_line(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"first\nsecond\n")
        corrupt_file(path, "garbage", seed=5, start=6)
        lines = path.read_bytes().split(b"\n")
        assert lines[0] == b"first"
        assert lines[2] == b"second"
        assert len(lines[1]) == 24  # the spliced junk

    def test_corrupt_file_rejects_unknown_mode(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"data")
        with pytest.raises(ResilienceError, match="unknown corruption mode"):
            corrupt_file(path, "scramble")

    def test_corrupt_fires_silently_and_damages_the_context_path(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_bytes(b"record-bytes\n")
        with fail_at(
            "corrupt.wal.record", action="corrupt", mode="flip", seed=11
        ) as point:
            fail_point(
                "corrupt.wal.record", path=str(path), start=0, end=len(b"record-bytes")
            )
        assert point.fired == 1  # continued silently: no exception escaped
        assert path.read_bytes() != b"record-bytes\n"

    def test_corrupt_without_a_path_context_is_an_error(self):
        with fail_at("corrupt.wal.record", action="corrupt"):
            with pytest.raises(ResilienceError, match="path"):
                fail_point("corrupt.wal.record")

    def test_faults_armed_tracks_the_registry(self):
        assert not faults_armed()
        arm("corrupt.wal.record", action="corrupt", seed=1)
        assert faults_armed()
        disarm_all()
        assert not faults_armed()

    def test_corrupt_env_spec_round_trip(self):
        arm("corrupt.wal.record", action="corrupt", mode="garbage", seed=7, flips=3)
        spec = env_spec()
        disarm_all()
        assert arm_from_env(spec) == 1
        point = armed_sites()["corrupt.wal.record"]
        assert point.action == "corrupt"
        assert point.mode == "garbage"
        assert point.seed == 7
        assert point.flips == 3

    def test_corrupt_rejects_unknown_mode_at_arm_time(self):
        with pytest.raises(ResilienceError, match="unknown corruption mode"):
            arm("corrupt.wal.record", action="corrupt", mode="scramble")


class TestEnvInheritance:
    def test_env_spec_round_trip(self):
        arm(SITE, hits=2, times=0)
        arm("exec.worker.task", action="exit", flag="/tmp/f")
        arm("wal.truncate", action="crash", probability=0.25, seed=7)
        spec = env_spec()
        disarm_all()
        assert arm_from_env(spec) == 3
        rearmed = armed_sites()
        assert rearmed[SITE].hits == 2
        assert rearmed[SITE].times == 0
        assert rearmed["exec.worker.task"].action == "exit"
        assert rearmed["exec.worker.task"].flag == "/tmp/f"
        assert rearmed["wal.truncate"].probability == 0.25
        assert rearmed["wal.truncate"].seed == 7

    def test_arm_from_env_rejects_malformed_specs(self):
        with pytest.raises(ResilienceError, match="malformed failpoint spec"):
            arm_from_env("just-a-site")
        with pytest.raises(ResilienceError, match="malformed failpoint option"):
            arm_from_env(f"{SITE}=raise:hits")
        with pytest.raises(ResilienceError, match="unknown failpoint option"):
            arm_from_env(f"{SITE}=raise:color=red")

    def test_empty_env_arms_nothing(self):
        assert arm_from_env(None) == 0
        assert arm_from_env("") == 0
        assert armed_sites() == {}

    def test_subprocess_inherits_faults_through_env_var(self):
        """A child process armed via ENV_VAR fires at import time."""
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src)
        env[ENV_VAR] = f"{SITE}=raise"
        code = (
            "import sys\n"
            "from repro.errors import FaultInjected\n"
            "from repro.resilience import fail_point\n"
            "try:\n"
            f"    fail_point({SITE!r})\n"
            "except FaultInjected:\n"
            "    sys.exit(42)\n"
            "sys.exit(1)\n"
        )
        proc = subprocess.run([sys.executable, "-c", code], env=env)
        assert proc.returncode == 42
