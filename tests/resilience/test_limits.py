"""Execution guardrails: EvalLimits, LimitGuard, the thread-local stack."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    BudgetExceededError,
    LimitExceeded,
    QueryTimeoutError,
    ResilienceError,
)
from repro.kcollections import KSet
from repro.resilience import EvalLimits, activate, check_tick, current_guard
from repro.resilience.limits import estimate_bytes
from repro.semirings import NATURAL
from repro.uxml import TreeBuilder


def _forest(*labels: str) -> KSet:
    return TreeBuilder(NATURAL).forest(*labels)


class TestEvalLimits:
    def test_validation(self):
        with pytest.raises(ResilienceError, match="timeout_s"):
            EvalLimits(timeout_s=-1)
        with pytest.raises(ResilienceError, match="max_rows"):
            EvalLimits(max_rows=-1)
        with pytest.raises(ResilienceError, match="max_result_bytes"):
            EvalLimits(max_result_bytes=-1)

    def test_is_bounded(self):
        assert not EvalLimits().is_bounded
        assert EvalLimits(timeout_s=1).is_bounded
        assert EvalLimits(max_rows=1).is_bounded
        assert EvalLimits(max_result_bytes=1).is_bounded

    def test_error_taxonomy(self):
        assert issubclass(QueryTimeoutError, LimitExceeded)
        assert issubclass(BudgetExceededError, LimitExceeded)

    def test_remaining_tracks_the_deadline(self):
        limits = EvalLimits(timeout_s=60)
        guard = limits.start()
        remaining = limits.remaining(guard)
        assert 0 < remaining <= 60
        assert EvalLimits(max_rows=5).remaining(EvalLimits(max_rows=5).start()) is None


class TestLimitGuard:
    def test_expired_deadline_raises_timeout(self):
        guard = EvalLimits(timeout_s=0).start()
        with pytest.raises(QueryTimeoutError, match="time budget"):
            guard.tick()

    def test_row_budget(self):
        guard = EvalLimits(max_rows=2).start()
        guard.tick(2)  # at the budget: fine
        with pytest.raises(BudgetExceededError, match="max_rows"):
            guard.tick(3)

    def test_check_result_counts_rows(self):
        guard = EvalLimits(max_rows=1).start()
        guard.check_result(_forest("a"))
        with pytest.raises(BudgetExceededError):
            guard.check_result(_forest("a", "b"))

    def test_check_result_byte_budget(self):
        guard = EvalLimits(max_result_bytes=4).start()
        with pytest.raises(BudgetExceededError, match="max_result_bytes"):
            guard.check_result(_forest("a-rather-long-label"))

    def test_unbounded_guard_never_fires(self):
        guard = EvalLimits().start()
        guard.tick(10**9)
        guard.check_result(_forest("a", "b", "c"))


class TestActivation:
    def test_check_tick_is_a_no_op_when_inactive(self):
        assert current_guard() is None
        check_tick(10**9)  # nothing armed anywhere: free pass

    def test_activation_scopes_the_guard(self):
        guard = EvalLimits(max_rows=1).start()
        with activate(guard):
            assert current_guard() is guard
            with pytest.raises(BudgetExceededError):
                check_tick(2)
        assert current_guard() is None
        check_tick(2)  # deactivated again

    def test_nesting_restores_the_outer_guard(self):
        outer = EvalLimits(max_rows=10).start()
        inner = EvalLimits(max_rows=1).start()
        with activate(outer):
            with activate(inner):
                assert current_guard() is inner
                with pytest.raises(BudgetExceededError):
                    check_tick(5)
            assert current_guard() is outer
            check_tick(5)  # inner bound gone

    def test_one_guard_is_shareable_across_threads(self):
        guard = EvalLimits(max_rows=1).start()
        errors: list[BaseException] = []

        def worker():
            try:
                with activate(guard):
                    check_tick(2)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(errors) == 4
        assert all(isinstance(error, BudgetExceededError) for error in errors)
        assert current_guard() is None  # nothing leaked onto this thread


class TestEstimateBytes:
    def test_scalars(self):
        assert estimate_bytes("abcd") == 4
        assert estimate_bytes(7) == 8
        assert estimate_bytes(None) == 8

    def test_shared_subtrees_counted_once(self):
        t = TreeBuilder(NATURAL)
        shared = t.tree("shared", t.leaf("xxxxxxxxxx"), t.leaf("yyyyyyyyyy"))
        single = estimate_bytes(t.forest(shared))
        double = estimate_bytes(t.forest(t.tree("a", shared), t.tree("b", shared)))
        # Two wrappers around ONE shared subtree cost far less than two copies.
        assert double < 2 * single + 2 * estimate_bytes("a")

    def test_forest_estimate_grows_with_content(self):
        small = estimate_bytes(_forest("a"))
        large = estimate_bytes(_forest("a", "b", "c", "d"))
        assert large > small > 0
