"""Shared hygiene for the resilience tests: never leak armed failpoints."""

from __future__ import annotations

import pytest

from repro.resilience import disarm_all


@pytest.fixture(autouse=True)
def _clean_failpoints():
    disarm_all()
    yield
    disarm_all()
