"""Shredding K-UXML into relations and the XPath-to-Datalog semantics (Section 7)."""

from __future__ import annotations

import pytest

from repro.kcollections import KSet
from repro.paperdata import figure4_source
from repro.relational.datalog import SkolemValue
from repro.semirings import BOOLEAN, NATURAL, PROVENANCE, Polynomial
from repro.shredding import (
    ROOT_PID,
    edge_relation,
    evaluate_xpath_via_datalog,
    path_programs,
    reachable_facts,
    shred_forest,
    shred_tree,
    step_program,
    unshred,
)
from repro.uxml.navigation import apply_axis, double_slash
from repro.uxquery.ast import Step
from repro.workloads import random_forest

POLY = Polynomial.parse


class TestShredUnshred:
    def test_round_trip_simple(self, nat_builder):
        b = nat_builder
        forest = b.forest(b.tree("a", b.tree("b", b.leaf("c") @ 2) @ 3) @ 4, b.leaf("d"))
        assert unshred(shred_forest(forest), NATURAL) == forest

    def test_round_trip_figure4(self):
        source = figure4_source()
        assert unshred(shred_forest(source), PROVENANCE) == source

    def test_round_trip_random(self):
        for seed in range(3):
            forest = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=seed)
            assert unshred(shred_forest(forest), NATURAL) == forest

    def test_each_node_is_one_fact(self, nat_builder):
        b = nat_builder
        forest = b.forest(b.tree("a", b.leaf("b"), b.leaf("c")))
        facts = shred_forest(forest)
        assert len(facts) == 3
        roots = [key for key in facts if key[0] == ROOT_PID]
        assert len(roots) == 1 and roots[0][2] == "a"

    def test_duplicate_subtree_values_get_distinct_ids(self, nat_builder):
        b = nat_builder
        forest = b.forest(b.tree("a", b.tree("p", b.leaf("x")), b.tree("q", b.leaf("x"))))
        facts = shred_forest(forest)
        x_nodes = [key for key in facts if key[2] == "x"]
        assert len(x_nodes) == 2

    def test_unshred_merges_equal_values(self):
        facts = {
            (ROOT_PID, 1, "a"): 2,
            (ROOT_PID, 2, "a"): 3,
        }
        forest = unshred(facts, NATURAL)
        assert len(forest) == 1
        assert forest.total_annotation() == 5

    def test_garbage_is_ignored(self, nat_builder):
        facts = {
            (ROOT_PID, 1, "a"): 1,
            (99, 100, "junk"): 5,
        }
        live = reachable_facts(facts, NATURAL)
        assert (99, 100, "junk") not in live
        forest = unshred(facts, NATURAL)
        assert len(forest) == 1

    def test_edge_relation_schema(self, nat_builder):
        b = nat_builder
        relation = edge_relation(shred_tree(b.leaf("a"), 2), NATURAL)
        assert relation.attributes == ("pid", "nid", "label")
        assert relation.annotation((ROOT_PID, 1, "a")) == 2


class TestXPathToDatalog:
    def test_step_programs_have_copy_and_root_rules(self):
        program = step_program(Step("descendant", "c"), "E", "E1", "f1")
        assert len(program) >= 4
        assert "E1" in program.idb_predicates()

    def test_path_programs_chain_predicates(self):
        programs = path_programs([Step("child", "*"), Step("child", "c")])
        assert [entry[1] for entry in programs] == ["E", "E_1"]
        assert [entry[2] for entry in programs] == ["E_1", "E_2"]

    def test_section7_example_table(self):
        """The //c example of Section 7 with x1 := 0."""
        source = figure4_source(x1="0")
        answer = evaluate_xpath_via_datalog(
            source, [Step("descendant-or-self", "*"), Step("child", "c")]
        )
        expected = double_slash(source, "c")
        assert answer == expected
        # The two answer roots carry y1 and y1*y2, as in the paper's E' table.
        annotations = {str(annotation) for annotation in answer.annotations()}
        assert "y1" in annotations and "y1*y2" in annotations

    @pytest.mark.parametrize(
        "axis,nodetest",
        [
            ("self", "*"),
            ("self", "a"),
            ("child", "*"),
            ("child", "c"),
            ("descendant", "*"),
            ("descendant", "c"),
            ("descendant-or-self", "c"),
            ("descendant-or-self", "*"),
        ],
    )
    def test_theorem2_single_steps_agree_with_direct_semantics(self, axis, nodetest):
        source = figure4_source()
        via_datalog = evaluate_xpath_via_datalog(source, [Step(axis, nodetest)])
        direct = apply_axis(source, axis, nodetest)
        assert via_datalog == direct

    def test_theorem2_multi_step_paths(self):
        source = figure4_source()
        steps = [Step("child", "*"), Step("descendant-or-self", "*"), Step("child", "c")]
        assert evaluate_xpath_via_datalog(source, steps) == apply_axis(
            apply_axis(apply_axis(source, "child", "*"), "descendant-or-self", "*"), "child", "c"
        )

    def test_theorem2_on_random_forests(self):
        for seed in range(3):
            forest = random_forest(NATURAL, num_trees=2, depth=3, fanout=2, seed=seed)
            for steps in (
                [Step("child", "*")],
                [Step("descendant", "a")],
                [Step("descendant-or-self", "*"), Step("child", "b")],
            ):
                direct = forest
                for step in steps:
                    direct = apply_axis(direct, step.axis, step.nodetest)
                assert evaluate_xpath_via_datalog(forest, steps) == direct

    def test_boolean_and_bag_shredding(self, bool_builder, nat_builder):
        for builder, semiring in ((bool_builder, BOOLEAN), (nat_builder, NATURAL)):
            forest = builder.forest(
                builder.tree("a", builder.tree("b", builder.leaf("c")), builder.leaf("c"))
            )
            assert evaluate_xpath_via_datalog(forest, [Step("descendant", "c")]) == apply_axis(
                forest, "descendant", "c"
            )

    def test_empty_path_is_identity_modulo_value_merging(self, nat_builder):
        b = nat_builder
        forest = b.forest(b.tree("a", b.leaf("x") @ 2))
        assert evaluate_xpath_via_datalog(forest, []) == forest
