"""Deterministic node-id allocation and garbage-tolerant round-trips.

Two properties the storage layer builds on:

* **determinism** — shredding is a function of the forest *value*: shredding
  the same forest twice (or the same value built in a different insertion
  order) yields identical facts, node ids included.  This is what makes
  snapshot/WAL column equality meaningful.
* **garbage tolerance** — ``unshred`` ignores tuples unreachable from the
  root parent id (the paper's clean-up step after each Datalog-translated
  navigation step), for every registry semiring and any mix of garbage
  shapes.
"""

from __future__ import annotations

import random

import pytest

from repro.kcollections import KSet
from repro.semirings import NATURAL
from repro.semirings.registry import standard_semirings
from repro.shredding import (
    ROOT_PID,
    canonical_member_key,
    reachable_facts,
    shred_forest,
    unshred,
)
from repro.workloads import random_forest

REGISTRY = list(standard_semirings())


class TestDeterministicNodeIds:
    @pytest.mark.parametrize("semiring", REGISTRY, ids=lambda s: s.name)
    def test_shred_twice_identical(self, semiring):
        forest = random_forest(semiring, num_trees=4, depth=3, fanout=2, seed=2)
        first = shred_forest(forest)
        second = shred_forest(forest)
        assert list(first.items()) == list(second.items())

    @pytest.mark.parametrize("semiring", REGISTRY, ids=lambda s: s.name)
    def test_insertion_order_does_not_matter(self, semiring):
        forest = random_forest(semiring, num_trees=5, depth=3, fanout=2, seed=3)
        items = list(forest.items())
        for seed in range(3):
            shuffled_items = items[:]
            random.Random(seed).shuffle(shuffled_items)
            shuffled = KSet(semiring, shuffled_items)
            assert shuffled == forest
            assert list(shred_forest(shuffled).items()) == list(
                shred_forest(forest).items()
            )

    def test_node_ids_are_dense_preorder(self):
        forest = random_forest(NATURAL, num_trees=3, depth=3, fanout=2, seed=4)
        facts = shred_forest(forest)
        nids = [nid for _, nid, _ in facts]
        assert nids == list(range(1, len(facts) + 1))
        seen = set()
        for pid, nid, _ in facts:
            assert pid == ROOT_PID or pid in seen  # parents precede children
            seen.add(nid)

    def test_canonical_member_key_orders_members(self, nat_builder):
        b = nat_builder
        x, y = b.leaf("x"), b.leaf("y")
        assert canonical_member_key(x, 1, NATURAL) < canonical_member_key(y, 1, NATURAL)
        # Equal trees with different annotations are kept apart by the key.
        assert canonical_member_key(x, 1, NATURAL) != canonical_member_key(x, 2, NATURAL)

    def test_canonical_key_is_structural_not_textual(self, nat_builder):
        """Labels containing would-be delimiter characters cannot make two
        distinct tree values collide (the key is nested tuples, not a flat
        rendering)."""
        b = nat_builder
        nested = b.tree("a", b.leaf("p"), b.leaf("q"))
        # A single leaf whose *label* spells out the nested rendering.
        tricky = b.tree("a", b.leaf("p[]^1 q"))
        assert nested != tricky
        assert canonical_member_key(nested, 1, NATURAL) != canonical_member_key(
            tricky, 1, NATURAL
        )
        # Equal forests built in either insertion order still shred equal.
        forward = KSet(NATURAL, [(nested, 1), (tricky, 1)])
        backward = KSet(NATURAL, [(tricky, 1), (nested, 1)])
        assert list(shred_forest(forward).items()) == list(shred_forest(backward).items())


def _garbage_tuples(semiring, next_id: int):
    """Unreachable tuples of the shapes the Datalog translation produces."""
    samples = [v for v in semiring.sample_elements() if not semiring.is_zero(v)]
    annotation = samples[0]
    orphan_parent = 10_000 + next_id
    return {
        # An orphan subtree: parent id never defined.
        (orphan_parent, orphan_parent + 1, "garbage"): annotation,
        (orphan_parent + 1, orphan_parent + 2, "garbage-child"): annotation,
        # A cycle among garbage nodes (never reachable from the root).
        (orphan_parent + 10, orphan_parent + 11, "loop"): annotation,
        (orphan_parent + 11, orphan_parent + 10, "loop"): annotation,
    }


class TestGarbageRoundTrips:
    @pytest.mark.parametrize("semiring", REGISTRY, ids=lambda s: s.name)
    @pytest.mark.parametrize("seed", range(3))
    def test_round_trip_with_garbage(self, semiring, seed):
        forest = random_forest(semiring, num_trees=3, depth=3, fanout=2, seed=seed)
        facts = dict(shred_forest(forest))
        facts.update(_garbage_tuples(semiring, len(facts)))
        assert unshred(facts, semiring) == forest, semiring.name

    @pytest.mark.parametrize("semiring", REGISTRY, ids=lambda s: s.name)
    def test_reachable_facts_drop_garbage_only(self, semiring):
        forest = random_forest(semiring, num_trees=2, depth=3, fanout=2, seed=9)
        clean = shred_forest(forest)
        polluted = dict(clean)
        garbage = _garbage_tuples(semiring, len(clean))
        polluted.update(garbage)
        live = reachable_facts(polluted, semiring)
        assert set(live) == set(clean)
        for key in garbage:
            assert key not in live

    @pytest.mark.parametrize("semiring", REGISTRY, ids=lambda s: s.name)
    def test_zero_annotated_tuples_are_dropped(self, semiring):
        forest = random_forest(semiring, num_trees=2, depth=2, fanout=2, seed=10)
        facts = dict(shred_forest(forest))
        # A reachable but zero-annotated member contributes nothing.
        facts[(ROOT_PID, 90_000, "phantom")] = semiring.zero
        assert unshred(facts, semiring) == forest

    def test_garbage_annotations_are_not_validated_into_result(self):
        """Garbage is dropped before validation; live facts are coerced."""
        forest = random_forest(NATURAL, num_trees=1, depth=2, fanout=1, seed=11)
        facts = dict(shred_forest(forest))
        facts[(77_777, 77_778, "junk")] = "not-an-annotation"
        assert unshred(facts, NATURAL) == forest
